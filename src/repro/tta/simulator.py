"""Cycle-accurate TTA simulator.

Implements the hybrid-pipelining semantics of Fig. 3:

* all moves of an instruction *sample* sources at begin-of-cycle and
  *commit* at end-of-cycle;
* a trigger launches its FU with the post-commit operand registers
  (eq. 2: ``C(T) - C(O) >= 0`` with equality allowed) and the operands
  are latched into the FU pipeline, enforcing relation (5);
* results land in the result register ``latency`` cycles after the
  trigger and are readable from that cycle on (eq. 3);
* register-file writes and guard writes become visible the next cycle;
* jumps (moves into the PC trigger) have one delay slot.

The functional units execute their *behavioural* reference models — the
gate level exists for area/test back-annotation, and the differential
tests in ``tests/`` pin the two views together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.reference import (
    ALU_OPS,
    CMP_OPS,
    MUL_OPS,
    SHIFTER_OPS,
    alu_reference,
    cmp_reference,
    lsu_extend_reference,
    mul_reference,
)
from repro.components.register_file import MultiPortMemory
from repro.components.spec import ComponentKind
from repro.tta.activity import ActivityTrace
from repro.tta.arch import Architecture
from repro.tta.isa import GUARD_UNIT, Guard, Instruction, Literal, Move, PortRef, Program
from repro.util.bitops import mask

#: Jump delay slots (moves into the PC take effect after this many extra
#: instructions have issued).
BRANCH_DELAY_SLOTS = 1

#: LSU opcode -> read-extension mode.
_LSU_MODE = {
    "ld": "word",
    "ld_ls": "low_signed",
    "ld_lu": "low_unsigned",
    "ld_h": "high",
}


class SimulationError(Exception):
    """Runtime fault: bad port, port overflow, unmapped address..."""


@dataclass
class SimResult:
    """Summary of one simulation run."""

    cycles: int
    halted: bool
    reason: str
    moves_executed: int
    moves_squashed: int
    triggers: int

    @property
    def ipc(self) -> float:
        """Executed moves per cycle (transport utilisation)."""
        return self.moves_executed / self.cycles if self.cycles else 0.0


@dataclass
class _FUState:
    operands: dict[str, int] = field(default_factory=dict)
    pipeline: list[tuple[int, int]] = field(default_factory=list)  # (ready, value)
    result: int = 0
    result_valid: bool = False


class TTASimulator:
    """Interpreter for a :class:`~repro.tta.isa.Program` on an architecture."""

    def __init__(
        self,
        arch: Architecture,
        program: Program,
        dmem_words: int = 65536,
        trace: bool = False,
        activity: bool = False,
    ):
        self.arch = arch
        self.program = program
        self.trace = trace
        self._width_mask = mask(arch.width)
        self.dmem = dict(program.data)
        self.dmem_words = dmem_words
        for addr in self.dmem:
            if not 0 <= addr < dmem_words:
                raise SimulationError(f"data image address {addr} out of range")
        self.guards = [0] * arch.num_guard_regs
        self._fu: dict[str, _FUState] = {}
        self._rf: dict[str, MultiPortMemory] = {}
        for unit in arch.units.values():
            if unit.spec.kind in (ComponentKind.FU, ComponentKind.LSU):
                self._fu[unit.name] = _FUState()
            elif unit.spec.kind is ComponentKind.RF:
                self._rf[unit.name] = MultiPortMemory(
                    unit.spec.num_regs,
                    unit.spec.width,
                    read_ports=unit.spec.n_out,
                    write_ports=unit.spec.n_in,
                )
        self.pc = 0
        self.cycle = 0
        self._pending_jump: tuple[int, int] | None = None
        self._trace_lines: list[str] = []

        # Switching-activity tracing is opt-in: when off, ``self.activity``
        # is None and the hot path pays only dead ``is not None`` checks —
        # the run loop executes identically (pinned by tests) either way.
        self.activity: ActivityTrace | None = None
        if activity:
            from repro.tta.encoding import MoveEncoder

            self.activity = ActivityTrace(width=arch.width)
            self._act_words = MoveEncoder(arch).encode_program(program)
            self._act_last_word = 0
            self._act_bus = [0] * arch.num_buses
            self._act_port_last: dict[tuple[str, str], int] = {}
            self._act_rf_last_read: dict[str, int] = {}
            self._act_result_port = {
                name: next(
                    (p.name for p in arch.unit(name).spec.output_ports), None
                )
                for name in self._fu
            }

    # ------------------------------------------------------------------
    # inspection helpers (tests, examples)
    # ------------------------------------------------------------------
    def rf_value(self, unit: str, reg: int) -> int:
        return self._rf[unit].peek(reg)

    def set_rf_value(self, unit: str, reg: int, value: int) -> None:
        self._rf[unit].poke(reg, value)

    def dmem_read(self, addr: int) -> int:
        return self.dmem.get(addr, 0)

    def dmem_write(self, addr: int, value: int) -> None:
        self.dmem[addr] = value & self._width_mask

    def guard(self, index: int) -> int:
        return self.guards[index]

    def result_of(self, unit: str) -> int:
        return self._fu[unit].result

    def trace_listing(self) -> str:
        return "\n".join(self._trace_lines)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 1_000_000) -> SimResult:
        """Run until halt, program end, or the cycle budget expires."""
        executed = 0
        squashed = 0
        triggers = 0
        halted = False
        reason = "end-of-program"

        while self.cycle < max_cycles:
            if not 0 <= self.pc < len(self.program.instructions):
                reason = "end-of-program"
                halted = True
                break
            instruction = self.program.instructions[self.pc]
            if self.activity is not None:
                word = self._act_words[self.pc]
                self.activity.record_fetch(self._act_last_word, word)
                self._act_last_word = word
            stats = self._step(instruction)
            executed += stats[0]
            squashed += stats[1]
            triggers += stats[2]
            if instruction.halt:
                reason = "halt"
                halted = True
                self.cycle += 1
                break
            self._advance_pc()
            self.cycle += 1
        else:
            reason = "max-cycles"

        if self.activity is not None:
            self.activity.cycles = self.cycle
        return SimResult(
            cycles=self.cycle,
            halted=halted,
            reason=reason,
            moves_executed=executed,
            moves_squashed=squashed,
            triggers=triggers,
        )

    def _advance_pc(self) -> None:
        if self._pending_jump is not None:
            when, target = self._pending_jump
            if self.cycle >= when:
                self.pc = target
                self._pending_jump = None
                return
        self.pc += 1

    def _step(self, instruction: Instruction) -> tuple[int, int, int]:
        """Execute one instruction; returns (executed, squashed, triggers)."""
        cycle = self.cycle
        act = self.activity
        # Begin-of-cycle: land finished results, open RF ports.
        for name, state in self._fu.items():
            while state.pipeline and state.pipeline[0][0] <= cycle:
                _ready, value = state.pipeline.pop(0)
                if act is not None:
                    port = self._act_result_port[name]
                    if port is not None:
                        act.record_port(name, port, state.result, value)
                state.result = value
                state.result_valid = True
        for rf in self._rf.values():
            rf.new_cycle()

        # Sample phase (one bus slot per move; squashed moves drive no bus).
        sampled: list[tuple[Move, int]] = []
        squashed = 0
        for bus, move in enumerate(instruction.slots):
            if move is None:
                continue
            if move.guard is not None and not self._guard_true(move.guard):
                squashed += 1
                continue
            value = self._read_source(move)
            sampled.append((move, value))
            if act is not None:
                self._record_transport(bus, move, value)

        # Commit phase: operands first, then triggers see fresh operands.
        triggers = 0
        trigger_moves: list[tuple[Move, int]] = []
        for move, value in sampled:
            if self._is_trigger(move.dst):
                trigger_moves.append((move, value))
            else:
                if act is not None:
                    self._record_commit(move, value)
                self._commit_plain(move, value)
        for move, value in trigger_moves:
            if act is not None:
                self._record_commit(move, value)
                act.record_activation(move.dst.unit)
            self._commit_trigger(move, value)
            triggers += 1

        if self.trace:
            done = ", ".join(str(m) for m, _v in sampled) or "nop"
            self._trace_lines.append(f"{cycle:6d} pc={self.pc:4d}: {done}")
        return len(sampled), squashed, triggers

    # ------------------------------------------------------------------
    # activity recording (only reached when tracing is enabled; purely
    # observational — reads state, never writes simulation state)
    # ------------------------------------------------------------------
    def _record_transport(self, bus: int, move: Move, value: int) -> None:
        act = self.activity
        act.record_bus(bus, self._act_bus[bus], value)
        self._act_bus[bus] = value
        src = move.src
        if isinstance(src, PortRef) and src.unit in self.arch.units:
            act.record_socket(src.unit, src.port)
            if self.arch.unit(src.unit).spec.kind is ComponentKind.RF:
                old = self._act_rf_last_read.get(src.unit, 0)
                act.record_rf_read(src.unit, old, value)
                self._act_rf_last_read[src.unit] = value
        dst = move.dst
        if dst.unit in self.arch.units:
            act.record_socket(dst.unit, dst.port)

    def _record_commit(self, move: Move, value: int) -> None:
        act = self.activity
        dst = move.dst
        if dst.unit == GUARD_UNIT:
            old = self.guards[_guard_index_or_raise(dst.port)]
            act.record_guard(old, value)
            return
        if dst.unit not in self.arch.units:
            return
        unit = self.arch.unit(dst.unit)
        if unit.spec.kind is ComponentKind.RF:
            if move.dst_reg is not None:
                old = self._rf[dst.unit].peek(move.dst_reg)
                act.record_rf_write(dst.unit, old, value & self._width_mask)
            return
        # FU/LSU operand or trigger register, or the PC target port.
        key = (dst.unit, dst.port)
        old = self._act_port_last.get(key, 0)
        new = value & self._width_mask
        act.record_port(dst.unit, dst.port, old, new)
        self._act_port_last[key] = new

    # ------------------------------------------------------------------
    def _guard_true(self, guard: Guard) -> bool:
        value = bool(self.guards[guard.index])
        return value ^ guard.invert

    def _is_trigger(self, dst: PortRef) -> bool:
        if dst.unit == GUARD_UNIT or dst.unit not in self.arch.units:
            return False
        spec = self.arch.unit(dst.unit).spec
        try:
            return spec.port(dst.port).is_trigger
        except KeyError:
            raise SimulationError(f"unknown port {dst}") from None

    def _read_source(self, move: Move) -> int:
        src = move.src
        if isinstance(src, Literal):
            return src.value & self._width_mask
        if src.unit == GUARD_UNIT:
            return self.guards[_guard_index_or_raise(src.port)]
        unit = self.arch.unit(src.unit)
        if unit.spec.kind is ComponentKind.RF:
            if move.src_reg is None:
                raise SimulationError(f"RF read {src} without register index")
            return self._rf[src.unit].read(move.src_reg)
        state = self._fu.get(src.unit)
        if state is None:
            raise SimulationError(f"{src} is not a readable unit")
        if not state.result_valid:
            raise SimulationError(
                f"cycle {self.cycle}: read of {src} before any result (eq. 3)"
            )
        return state.result

    def _commit_plain(self, move: Move, value: int) -> None:
        dst = move.dst
        if dst.unit == GUARD_UNIT:
            self.guards[_guard_index_or_raise(dst.port)] = value & 1
            return
        unit = self.arch.unit(dst.unit)
        if unit.spec.kind is ComponentKind.RF:
            if move.dst_reg is None:
                raise SimulationError(f"RF write {dst} without register index")
            self._rf[dst.unit].write(move.dst_reg, value)
            return
        # Operand register of an FU/LSU.
        state = self._fu.get(dst.unit)
        if state is None:
            raise SimulationError(f"{dst} is not a writable unit")
        state.operands[dst.port] = value & self._width_mask

    def _commit_trigger(self, move: Move, value: int) -> None:
        dst = move.dst
        unit = self.arch.unit(dst.unit)
        spec = unit.spec
        if spec.kind is ComponentKind.PC:
            if move.opcode != "jump":
                raise SimulationError(f"PC trigger with opcode {move.opcode!r}")
            self._pending_jump = (
                self.cycle + BRANCH_DELAY_SLOTS,
                value % (len(self.program.instructions) + 1),
            )
            return
        state = self._fu[dst.unit]
        state.operands[dst.port] = value & self._width_mask
        if spec.kind is ComponentKind.LSU:
            self._trigger_lsu(move, unit, state, value)
            return
        result = self._dispatch_fu(move.opcode, unit, state, value)
        state.pipeline.append((self.cycle + spec.latency, result))

    def _trigger_lsu(self, move: Move, unit, state: _FUState, addr: int) -> None:
        opcode = move.opcode or "ld"
        addr &= self._width_mask
        if addr >= self.dmem_words:
            raise SimulationError(f"data address {addr:#x} out of range")
        if opcode == "st":
            wdata = state.operands.get("wdata", 0)
            self.dmem[addr] = wdata & self._width_mask
            return
        mode = _LSU_MODE.get(opcode)
        if mode is None:
            raise SimulationError(f"LSU opcode {opcode!r} invalid")
        raw = self.dmem.get(addr, 0)
        value = lsu_extend_reference(mode, raw, self.arch.width)
        state.pipeline.append((self.cycle + unit.spec.latency, value))

    def _dispatch_fu(self, opcode: str | None, unit, state: _FUState, trigger_value: int) -> int:
        spec = unit.spec
        if opcode is None:
            raise SimulationError(f"trigger on {unit.name} without opcode")
        if opcode not in spec.ops:
            raise SimulationError(f"{unit.name} cannot execute {opcode!r}")
        operand_port = next(
            (p.name for p in spec.input_ports if not p.is_trigger), None
        )
        a = state.operands.get(operand_port, 0) if operand_port else 0
        b = trigger_value & self._width_mask
        width = spec.width
        if opcode in ALU_OPS:
            return alu_reference(opcode, a, b, width)
        if opcode in CMP_OPS:
            return cmp_reference(opcode, a, b, width)
        if opcode in SHIFTER_OPS:
            return alu_reference(opcode, a, b, width)
        if opcode in MUL_OPS:
            return mul_reference(a, b, width)
        raise SimulationError(f"no behavioural model for opcode {opcode!r}")


def _guard_index_or_raise(port: str) -> int:
    if port.startswith("g") and port[1:].isdigit():
        return int(port[1:])
    raise SimulationError(f"bad guard register name {port!r}")
