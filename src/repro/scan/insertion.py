"""Scan insertion and shift/capture simulation.

The paper's only DfT hardware is "flip-flops (functional) with scan".
This module makes that concrete: given a combinational core whose state
is exposed as present-state/next-state net pairs (our flip-flop netlists
already have that shape), it builds the scan-chain view and simulates
the classic test protocol —

    shift-in n_l bits -> capture one functional cycle -> shift-out
    (overlapped with the next shift-in)

so the ``n_p * (n_l + 1) + n_l`` accounting of :mod:`repro.scan.cost`
is not just a formula but the measured behaviour of an executable model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.netlist.cells import evaluate_cell
from repro.netlist.netlist import Netlist
from repro.scan.cost import scan_test_cycles


@dataclass(frozen=True)
class ScanCell:
    """One scannable flip-flop: present-state PI net, next-state PO net."""

    name: str
    ppi: int    # the core reads the cell's value from this net
    ppo: int    # the core writes the cell's next value to this net


def scan_cells_by_prefix(
    netlist: Netlist, ppi_prefix: str = "q", ppo_prefix: str = "d"
) -> list[ScanCell]:
    """Pair up ``q...``/``d...`` nets by their suffix (RF-FF convention)."""
    ppis: dict[str, int] = {}
    for pi in netlist.inputs:
        name = netlist.net_name(pi)
        if name.startswith(ppi_prefix):
            ppis[name[len(ppi_prefix):]] = pi
    cells: list[ScanCell] = []
    for po in netlist.outputs:
        name = netlist.net_name(po)
        if name.startswith(ppo_prefix):
            suffix = name[len(ppo_prefix):]
            if suffix in ppis:
                cells.append(ScanCell(f"ff{suffix}", ppis[suffix], po))
    if not cells:
        raise ValueError("no PPI/PPO pairs matched the naming convention")
    return cells


class ScannedDesign:
    """A core netlist with its state cells stitched into one scan chain."""

    def __init__(
        self,
        core: Netlist,
        cells: list[ScanCell],
        fault: Fault | None = None,
    ):
        self.core = core
        self.cells = list(cells)
        self.fault = fault
        self.state = [0] * len(cells)
        self.cycles = 0
        self._order = core.topological_order()

    @property
    def chain_length(self) -> int:
        return len(self.cells)

    # ------------------------------------------------------------------
    def _evaluate(self, pi_values: dict[int, int]) -> list[int]:
        """Single-pattern core evaluation with optional fault injection."""
        values = [0] * self.core.num_nets
        for pi in self.core.inputs:
            values[pi] = pi_values.get(pi, 0) & 1
        fault = self.fault
        if fault is not None and not fault.is_branch:
            if self.core.nets[fault.net].driver is None:
                values[fault.net] = fault.stuck_at
        for gid in self._order:
            gate = self.core.gates[gid]
            ins = [values[n] for n in gate.inputs]
            if (
                fault is not None
                and fault.is_branch
                and gid == fault.gate
            ):
                ins[fault.pin] = fault.stuck_at
            values[gate.output] = evaluate_cell(gate.cell_type, ins, 1)
            if (
                fault is not None
                and not fault.is_branch
                and gate.output == fault.net
            ):
                values[gate.output] = fault.stuck_at
        return values

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    def shift(self, bits_in: list[int]) -> list[int]:
        """Shift ``bits_in`` through the chain; returns the bits out."""
        out: list[int] = []
        for bit in bits_in:
            out.append(self.state[-1])
            self.state = [bit & 1] + self.state[:-1]
            self.cycles += 1
        return out

    def capture(self, pi_values: dict[int, int]) -> dict[int, int]:
        """One functional clock: state := next-state; returns PO values."""
        merged = dict(pi_values)
        for cell, value in zip(self.cells, self.state):
            merged[cell.ppi] = value
        values = self._evaluate(merged)
        self.state = [values[cell.ppo] & 1 for cell in self.cells]
        self.cycles += 1
        return {po: values[po] for po in self.core.outputs}

    def apply_pattern(
        self, scan_bits: list[int], pi_values: dict[int, int]
    ) -> tuple[dict[int, int], list[int]]:
        """Full shift-capture for one pattern; returns (POs, old state out).

        The shift-out of the *previous* capture overlaps this shift-in,
        exactly as the cost formula assumes.
        """
        if len(scan_bits) != self.chain_length:
            raise ValueError("scan vector length must equal chain length")
        shifted_out = self.shift(scan_bits)
        po_values = self.capture(pi_values)
        return po_values, shifted_out

    def run_test(
        self, patterns: list[tuple[list[int], dict[int, int]]]
    ) -> list[tuple[dict[int, int], list[int]]]:
        """Apply a whole pattern set plus the final shift-out."""
        results = []
        for scan_bits, pi_values in patterns:
            results.append(self.apply_pattern(scan_bits, pi_values))
        final = self.shift([0] * self.chain_length)
        results.append(({}, final))
        return results


def scan_test_detects(
    core: Netlist,
    cells: list[ScanCell],
    fault: Fault,
    patterns: list[tuple[list[int], dict[int, int]]],
) -> bool:
    """Does the scan protocol distinguish the faulty device from a good one?"""
    good = ScannedDesign(core, cells)
    bad = ScannedDesign(core, cells, fault=fault)
    return good.run_test(patterns) != bad.run_test(patterns)


def measured_scan_cycles(chain_length: int, num_patterns: int) -> int:
    """Cycle count the executable protocol produces (must match cost.py)."""
    design_cycles = num_patterns * (chain_length + 1) + chain_length
    assert design_cycles == scan_test_cycles(num_patterns, chain_length)
    return design_cycles
