"""Memory testing: functional fault models and march algorithms.

The paper tests register files — implemented as multi-port memories — with
*marching* patterns [14] and cites the port-restriction analysis of
Hamdioui & van de Goor [15].  This package provides:

* a word-oriented memory model with injectable cell faults
  (stuck-at, transition, idempotent/inversion coupling),
* the classic march algorithms (MATS+, March X, March Y, March C-),
* pattern-count accounting (``n_p`` for eq. 12) including data
  backgrounds and the multi-port overhead.
"""

from repro.memtest.memory_model import (
    CellFault,
    CouplingFault,
    FaultyMemory,
    StuckAtCellFault,
    TransitionFault,
)
from repro.memtest.march import (
    MARCH_ALGORITHMS,
    MARCH_CM,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    MarchElement,
    MarchResult,
    MarchTest,
    march_pattern_count,
    run_march,
)

__all__ = [
    "CellFault",
    "CouplingFault",
    "FaultyMemory",
    "MARCH_ALGORITHMS",
    "MARCH_CM",
    "MARCH_X",
    "MARCH_Y",
    "MATS_PLUS",
    "MarchElement",
    "MarchResult",
    "MarchTest",
    "StuckAtCellFault",
    "TransitionFault",
    "march_pattern_count",
    "run_march",
]
