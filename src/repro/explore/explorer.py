"""Exploration results: the point-set container and its Pareto views.

:class:`ExplorationResult` holds what one sweep produced — the evaluated
points plus the workload profile — with memoized Fig. 2 / Fig. 8 Pareto
views.  The sweep itself is driven by the study engine
(:mod:`repro.study`): an exhaustive :class:`~repro.study.Study` is the
whole Sec. 2 + Sec. 3 flow, and the test-cost axis (Fig. 8) is attached
by :func:`repro.testcost.cost.attach_test_costs` so the exploration
stays independent of the ATPG layer.  (The pre-study ``explore()``
one-shot was a deprecation shim over that engine and has been removed.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explore.evaluate import EvaluatedPoint
from repro.explore.pareto import pareto_filter


@dataclass
class ExplorationResult:
    """Everything one exploration run produced."""

    workload: str
    profile: dict[str, int]
    points: list[EvaluatedPoint] = field(default_factory=list)
    _pareto2d: tuple[tuple, list[EvaluatedPoint]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _pareto3d: tuple[tuple[int | None, ...], list[EvaluatedPoint]] | None = (
        field(default=None, init=False, repr=False, compare=False)
    )

    @property
    def feasible_points(self) -> list[EvaluatedPoint]:
        return [p for p in self.points if p.feasible]

    @property
    def pareto2d(self) -> list[EvaluatedPoint]:
        """Fig. 2: non-dominated in the (area, execution time) plane.

        Memoized — the filter is O(n^2) and callers treat this as a
        cheap attribute.  The cache is keyed on a content fingerprint of
        the public ``points`` list (like ``pareto3d``), so appending,
        replacing *or mutating* a point — ``attach_test_costs`` rewrites
        costs in place — recomputes the front instead of serving a stale
        one.
        """
        fingerprint = tuple(
            (p.label, p.area, p.cycles) for p in self.points
        )
        if self._pareto2d is None or self._pareto2d[0] != fingerprint:
            self._pareto2d = (
                fingerprint,
                pareto_filter(self.feasible_points, key=lambda p: p.cost2d()),
            )
        return self._pareto2d[1]

    @property
    def pareto3d(self) -> list[EvaluatedPoint]:
        """Fig. 8: non-dominated in (area, time, test cost).

        Only valid after test costs were attached; the paper evaluates
        the test axis *on the 2-D Pareto points*, preserving the already
        achieved area/throughput ratio — so the base set here is the 2-D
        Pareto set, not the whole space.

        Memoized against the attached test costs: ``attach_test_costs``
        mutates points after the first access, so the cache is keyed on
        the test-cost fingerprint of the 2-D Pareto set.
        """
        fingerprint = tuple(p.test_cost for p in self.pareto2d)
        if self._pareto3d is None or self._pareto3d[0] != fingerprint:
            candidates = [p for p in self.pareto2d if p.test_cost is not None]
            self._pareto3d = (
                fingerprint,
                pareto_filter(candidates, key=lambda p: p.cost3d()),
            )
        return self._pareto3d[1]

    def summary(self) -> str:
        feasible = self.feasible_points
        lines = [
            f"exploration of {self.workload}: {len(self.points)} configs, "
            f"{len(feasible)} feasible, {len(self.pareto2d)} Pareto-2D",
        ]
        for point in sorted(self.pareto2d, key=lambda p: p.area):
            tc = f" ft={point.test_cost}" if point.test_cost is not None else ""
            lines.append(
                f"  {point.label:<28} area={point.area:>9.0f} "
                f"cycles={point.cycles:>9}{tc}"
            )
        return "\n".join(lines)
