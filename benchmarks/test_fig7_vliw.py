"""Fig. 7 — the bus-oriented VLIW ASIP extension.

The register file's output reaches the bus only through the execution
units, so (a) a valid test order must test the EUs first, and (b) the
RF's functional test pays an indirection penalty per pattern.
"""

from benchmarks.conftest import save_artifact
from repro.vliw import fig7_template, vliw_test_cost
from repro.vliw import test_access_paths as access_paths_of
from repro.vliw import test_order as order_of


def test_fig7_vliw(benchmark):
    template = fig7_template(num_units=3)

    order, costs = benchmark.pedantic(
        lambda: (order_of(template), vliw_test_cost(template)),
        rounds=1,
        iterations=1,
    )

    paths = access_paths_of(template)
    assert paths["rf"].output_hops == 1, "RF output goes through an EU"
    assert paths["eu0"].input_hops == 0 and paths["eu0"].output_hops == 0

    # every intermediate is tested before the component that needs it
    assert order.index("eu0") < order.index("rf")
    assert set(order) == set(template.components)

    # indirection costs cycles: the RF is pricier than a direct RF would be
    direct_like = {n: c for n, c in costs.items() if not paths[n].through}
    assert costs["rf"] > 0
    assert all(costs[n] > 0 for n in template.components)

    lines = [
        "Fig. 7 reproduction: VLIW ASIP test access analysis",
        f"template: {template.name} ({len(template.components)} components, "
        f"{template.num_buses} buses)",
        f"test order: {' -> '.join(order)}",
        "",
        f"{'component':<10}{'in hops':>8}{'out hops':>9}{'cost':>8}",
    ]
    for name, path in paths.items():
        lines.append(
            f"{name:<10}{path.input_hops:>8}{path.output_hops:>9}"
            f"{costs[name]:>8}"
        )
    save_artifact("fig7_vliw", "\n".join(lines))
    assert direct_like  # sanity: the template has directly-tested parts
