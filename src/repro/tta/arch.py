"""The TTA architecture template (paper Fig. 1).

An :class:`Architecture` is the object the explorer enumerates: a set of
component instances, a bus count, and a port->bus connectivity map.  The
"exact match of the number and type of functional units, register files,
sockets and busses is the subject of design space exploration".

Connectivity defaults to full (every socket reaches every bus); sparse
maps reproduce Fig. 6, where two identical FUs get different test costs
purely from their port binding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.library import component_datasheet
from repro.components.spec import ComponentKind, ComponentSpec

#: Interconnect area model: per-bit bus run plus per-connection switch.
BUS_AREA_PER_BIT = 2.0
CONNECTION_AREA = 4.0

#: Guard register file size (boolean predicate registers).
DEFAULT_GUARD_REGS = 4


class ArchitectureError(Exception):
    """Ill-formed architecture template."""


@dataclass
class UnitInstance:
    """One placed component."""

    name: str
    spec: ComponentSpec


class Architecture:
    """A concrete TTA datapath template."""

    def __init__(
        self,
        name: str,
        width: int,
        num_buses: int,
        units: list[UnitInstance],
        connectivity: dict[tuple[str, str], frozenset[int]] | None = None,
        num_guard_regs: int = DEFAULT_GUARD_REGS,
    ):
        if num_buses < 1:
            raise ArchitectureError("need at least one move bus")
        if num_guard_regs < 1:
            raise ArchitectureError("need at least one guard register")
        self.name = name
        self.width = width
        self.num_buses = num_buses
        self.num_guard_regs = num_guard_regs
        self.units: dict[str, UnitInstance] = {}
        for unit in units:
            if unit.name in self.units:
                raise ArchitectureError(f"duplicate unit name {unit.name!r}")
            if unit.spec.width != width and unit.spec.kind is not ComponentKind.PC:
                raise ArchitectureError(
                    f"unit {unit.name!r} width {unit.spec.width} != "
                    f"datapath width {width}"
                )
            self.units[unit.name] = unit

        full = frozenset(range(num_buses))
        self.connectivity: dict[tuple[str, str], frozenset[int]] = {}
        for unit in self.units.values():
            for port in unit.spec.ports:
                key = (unit.name, port.name)
                buses = (connectivity or {}).get(key, full)
                if not buses:
                    raise ArchitectureError(f"port {key} connected to no bus")
                if not buses <= full:
                    raise ArchitectureError(f"port {key} names a missing bus")
                self.connectivity[key] = frozenset(buses)

        self._validate_composition()
        self._port_table: dict[
            tuple[str, str], tuple[ComponentSpec, object, frozenset[int]]
        ] | None = None
        self._fu_op_table: dict[str, list[UnitInstance]] = {}
        self._ops_supported: set[str] | None = None

    def _validate_composition(self) -> None:
        if not any(u.spec.kind is ComponentKind.PC for u in self.units.values()):
            raise ArchitectureError("architecture needs a program counter unit")
        kinds = [u.spec.kind for u in self.units.values()]
        for singleton in (ComponentKind.PC, ComponentKind.LSU, ComponentKind.IMM):
            if kinds.count(singleton) > 1:
                raise ArchitectureError(f"at most one {singleton.value} unit")

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def unit(self, name: str) -> UnitInstance:
        try:
            return self.units[name]
        except KeyError:
            raise ArchitectureError(f"no unit named {name!r}") from None

    def units_of_kind(self, kind: ComponentKind) -> list[UnitInstance]:
        return [u for u in self.units.values() if u.spec.kind is kind]

    @property
    def fus(self) -> list[UnitInstance]:
        return self.units_of_kind(ComponentKind.FU)

    @property
    def rfs(self) -> list[UnitInstance]:
        return self.units_of_kind(ComponentKind.RF)

    @property
    def lsu(self) -> UnitInstance | None:
        lsus = self.units_of_kind(ComponentKind.LSU)
        return lsus[0] if lsus else None

    @property
    def pc_unit(self) -> UnitInstance:
        return self.units_of_kind(ComponentKind.PC)[0]

    @property
    def imm_unit(self) -> UnitInstance | None:
        imms = self.units_of_kind(ComponentKind.IMM)
        return imms[0] if imms else None

    def ops_supported(self) -> set[str]:
        if self._ops_supported is None:
            ops: set[str] = set()
            for unit in self.fus:
                ops |= set(unit.spec.ops)
            self._ops_supported = ops
        return self._ops_supported

    def fu_for_op(self, op: str) -> list[UnitInstance]:
        """FUs able to execute ``op`` (scheduler candidates, memoized).

        The scheduler asks for every operation it places; the unit set
        never changes after construction, so the answer is computed once
        per opcode.  Callers must not mutate the returned list.
        """
        candidates = self._fu_op_table.get(op)
        if candidates is None:
            candidates = [u for u in self.fus if op in u.spec.ops]
            self._fu_op_table[op] = candidates
        return candidates

    def port_buses(self, unit: str, port: str) -> frozenset[int]:
        try:
            return self.connectivity[(unit, port)]
        except KeyError:
            raise ArchitectureError(f"unknown port {unit}.{port}") from None

    def test_bus(self, unit: str, port: str) -> int:
        """Designated bus for test transports (lowest connected)."""
        return min(self.port_buses(unit, port))

    @property
    def port_table(
        self,
    ) -> dict[tuple[str, str], tuple[ComponentSpec, object, frozenset[int]]]:
        """(unit, port) -> (spec, port spec, connected buses), lazily built.

        The timing validator consults unit/port/connectivity for every
        move of every instruction; one flat lookup table turns that into
        a single dict probe per move end.
        """
        table = self._port_table
        if table is None:
            table = {}
            for unit in self.units.values():
                for port in unit.spec.ports:
                    key = (unit.name, port.name)
                    table[key] = (unit.spec, port, self.connectivity[key])
            self._port_table = table
        return table

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------
    @property
    def num_sockets(self) -> int:
        """One socket per connected port (Fig. 1's distributed control)."""
        return sum(1 for _ in self.connectivity)

    @property
    def num_connections(self) -> int:
        return sum(len(buses) for buses in self.connectivity.values())

    def area(self) -> float:
        """Total placed area: components + interconnection network."""
        component_area = sum(
            component_datasheet(u.spec).total_area for u in self.units.values()
        )
        bus_area = self.num_buses * self.width * BUS_AREA_PER_BIT
        switch_area = self.num_connections * CONNECTION_AREA
        return round(component_area + bus_area + switch_area, 3)

    def describe(self) -> str:
        lines = [
            f"architecture {self.name}: width={self.width} "
            f"buses={self.num_buses} area={self.area():.0f}"
        ]
        for unit in self.units.values():
            ports = ", ".join(
                f"{p.name}->{sorted(self.port_buses(unit.name, p.name))}"
                for p in unit.spec.ports
            )
            lines.append(f"  {unit.name}: {unit.spec.name} [{ports}]")
        return "\n".join(lines)
