"""Dictionary-based fault diagnosis.

The inverse problem of ATPG: given the set of patterns that *failed* on
a manufactured part, rank candidate stuck-at faults by how well their
simulated signatures explain the observation.  This is the classic
fault-dictionary method; with the paper's functional test (patterns
applied through the sockets) the same dictionary localises a failure to
a component and a fault site.

Scoring per candidate fault:

* ``exact``   — signature identical to the observation;
* otherwise Jaccard similarity of the failing-pattern sets (a fault that
  explains many observed failures while predicting few unobserved ones
  scores high).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.faults import Fault, collapse_faults
from repro.atpg.faultsim import WORD, FaultSimulator
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class DiagnosisCandidate:
    """One ranked explanation of the observed failures."""

    fault: Fault
    score: float
    exact: bool
    predicted_failures: int

    def describe(self, netlist: Netlist) -> str:
        tag = "exact" if self.exact else f"{self.score:.2f}"
        return f"{self.fault.describe(netlist)} [{tag}]"


class FaultDictionary:
    """Per-fault failing-pattern signatures over a fixed pattern set."""

    def __init__(self, netlist: Netlist, patterns: list[int]):
        self.netlist = netlist
        self.patterns = list(patterns)
        self._faults, _ = collapse_faults(netlist)
        self._signatures = self._build()

    def _build(self) -> dict[Fault, int]:
        sim = FaultSimulator(self.netlist)
        signatures: dict[Fault, int] = {f: 0 for f in self._faults}
        for base in range(0, len(self.patterns), WORD):
            chunk = self.patterns[base : base + WORD]
            results = sim.simulate_word(chunk, self._faults)
            for fault, mask in results.items():
                signatures[fault] |= mask << base
        return signatures

    @property
    def num_faults(self) -> int:
        return len(self._faults)

    def signature_of(self, fault: Fault) -> int:
        return self._signatures[fault]

    def expected_failures(self, fault: Fault) -> list[int]:
        """Pattern indices this fault would fail."""
        sig = self._signatures[fault]
        return [i for i in range(len(self.patterns)) if (sig >> i) & 1]

    # ------------------------------------------------------------------
    def diagnose(
        self,
        failing_patterns: list[int],
        max_candidates: int = 10,
    ) -> list[DiagnosisCandidate]:
        """Rank faults against an observed set of failing pattern indices."""
        observed = 0
        for index in failing_patterns:
            if not 0 <= index < len(self.patterns):
                raise ValueError(f"pattern index {index} out of range")
            observed |= 1 << index
        if observed == 0:
            return []

        candidates: list[DiagnosisCandidate] = []
        for fault, signature in self._signatures.items():
            if signature == 0:
                continue
            intersection = (signature & observed).bit_count()
            if intersection == 0:
                continue
            union = (signature | observed).bit_count()
            score = intersection / union
            candidates.append(
                DiagnosisCandidate(
                    fault=fault,
                    score=score,
                    exact=signature == observed,
                    predicted_failures=signature.bit_count(),
                )
            )
        candidates.sort(
            key=lambda c: (-c.score, c.predicted_failures, repr(c.fault))
        )
        return candidates[:max_candidates]

    def diagnose_responses(
        self,
        responses: list[list[int]],
        max_candidates: int = 10,
    ) -> list[DiagnosisCandidate]:
        """Diagnose from raw per-pattern output words (device responses)."""
        if len(responses) != len(self.patterns):
            raise ValueError("one response vector per pattern required")
        failing = []
        for index, (pattern, response) in enumerate(
            zip(self.patterns, responses)
        ):
            pi_map = {
                pi: (pattern >> i) & 1
                for i, pi in enumerate(self.netlist.inputs)
            }
            golden = [
                v & 1 for v in self.netlist.evaluate_outputs(pi_map, 1)
            ]
            if golden != [v & 1 for v in response]:
                failing.append(index)
        return self.diagnose(failing, max_candidates)
