"""The on-disk evaluated-point cache.

Each point of a sweep is one small JSON file keyed by a stable hash of
``(workload name, ArchConfig, width)`` — the full evaluation inputs, so
a key collision can only mean an identical evaluation.  Writes go
through a temp-file rename, which makes a campaign interruptible at any
point: whatever finished is durable, and the next run resumes from the
surviving entries instead of re-compiling them.

The cache stores *results* (area, cycles, test cost), never compiled
programs — entries are a few hundred bytes and safe to version or rsync
between machines.

Scaling posture (PR 8):

* entries live in **shards** — ``shards/<prefix>/`` keyed by the first
  :data:`SHARD_WIDTH` hex characters of the entry key — so a
  million-entry cache never puts a million files in one directory, and
  concurrent writers from different studies spread their directory
  traffic across 256 subtrees; a flat (pre-shard) cache is migrated
  transparently, entry by entry, as keys are touched;
* an optional ``max_bytes`` budget turns the cache into an **LRU**:
  hits refresh an entry's mtime and :meth:`ResultCache.compact` evicts
  the least-recently-used entries once the budget is exceeded;
* lifetime :class:`CacheStats` counters can be folded into a durable
  ``stats.json`` (:meth:`ResultCache.persist_stats`) so ``repro cache
  stats`` reports hit rates across processes, not just one run.

Robustness posture (PR 7):

* a corrupt or truncated entry is **quarantined** — moved to
  ``<dir>/quarantine/`` — so re-evaluation replaces it and the torn
  bytes stay available for diagnosis instead of being re-read forever;
* :meth:`ResultCache.put` holds a per-key ``flock`` around its
  read-merge-write-replace, so two processes attaching different
  post-pass axes to the same entry cannot drop each other's writes;
* :meth:`ResultCache.verify` sweeps every shard for the ``repro cache
  verify|repair`` CLI.

The entry codec is shared: :func:`encode_entry`/:func:`decode_entry`
are also what study checkpoints store per completed point, so the two
on-disk formats cannot drift.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:          # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.explore.evaluate import EvaluatedPoint
from repro.explore.space import ArchConfig
from repro.util.digest import content_digest

_SCHEMA = 2

#: Hex characters of the key that name an entry's shard (2 -> 256 shards).
SHARD_WIDTH = 2

#: Top-level file that accumulates persisted :class:`CacheStats`
#: counters; never an entry, excluded from every entry walk.
STATS_FILE = "stats.json"

#: Exceptions that mean "this entry's bytes or shape are corrupt" (as
#: opposed to OSError, which means the file is missing or unreadable).
_CORRUPT_ERRORS = (ValueError, KeyError, TypeError, AttributeError)


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ResultCache` instance.

    ``hits``/``misses`` count :meth:`ResultCache.get` outcomes
    (unreadable or schema-mismatched entries are misses, exactly as
    they behave).  ``puts`` counts completed writes, ``merge_reads``
    the writes that took the merge-on-write path (a post-pass
    attachment rewriting an existing entry), ``merged_axes`` the
    post-pass axes actually preserved from the old entry — each one a
    write that, unmerged, would have dropped another study's work.
    ``bytes_written`` sums the serialised payloads.  ``quarantined``
    counts corrupt entries moved aside by :meth:`ResultCache.get`,
    ``evictions`` entries removed by the LRU budget, and ``migrated``
    flat-layout entries relocated into their shard.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    merge_reads: int = 0
    merged_axes: int = 0
    bytes_written: int = 0
    quarantined: int = 0
    evictions: int = 0
    migrated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over the stats' lifetime (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "merge_reads": self.merge_reads,
            "merged_axes": self.merged_axes,
            "bytes_written": self.bytes_written,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "migrated": self.migrated,
        }

    def delta(self, since: dict) -> dict:
        """Counter changes since an earlier :meth:`as_dict` snapshot."""
        now = self.as_dict()
        return {k: now[k] - since.get(k, 0) for k in now}


def default_cache_dir() -> Path:
    """``$REPRO_CAMPAIGN_CACHE`` or ``~/.cache/repro-tta/campaign``."""
    env = os.environ.get("REPRO_CAMPAIGN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tta" / "campaign"


def cache_key(workload: str, config: ArchConfig, width: int) -> str:
    """Stable content hash of one evaluation's inputs."""
    return content_digest(
        {
            "schema": _SCHEMA,
            "workload": workload,
            "width": width,
            "config": config.to_dict(),
        }
    )


def encode_entry(
    workload: str,
    point: EvaluatedPoint,
    width: int,
    march: str | None = None,
    energy_model: str | None = None,
) -> dict:
    """One evaluated point as the JSON entry shape cache files use.

    Post-pass provenance keys (``march``, ``energy_model``) are stored
    only alongside the axis they qualify, so a restored axis can be
    rejected when it was computed under different settings.
    """
    return {
        "schema": _SCHEMA,
        "workload": workload,
        "width": width,
        "config": point.config.to_dict(),
        "area": point.area,
        "cycles": point.cycles,
        "code_size": point.code_size,
        "test_cost": point.test_cost,
        "march": march if point.test_cost is not None else None,
        "energy": point.energy,
        "energy_model": energy_model if point.energy is not None else None,
    }


def decode_entry(
    data: dict,
    march: str | None = None,
    energy_model: str | None = None,
) -> EvaluatedPoint | None:
    """Invert :func:`encode_entry`.

    Returns ``None`` on a schema mismatch (a stale-but-well-formed
    entry, not an error); raises one of ``_CORRUPT_ERRORS`` when the
    payload's shape is wrong — the caller decides whether that means
    quarantine.  A stored test cost is only restored when it was
    computed for the same ``march`` algorithm, and a stored energy only
    under the same ``energy_model``; the (area, cycles) evaluation
    depends on neither.
    """
    if not isinstance(data, dict):
        raise TypeError("cache entry is not a JSON object")
    if data.get("schema") != _SCHEMA:
        return None
    cycles = data["cycles"]
    code_size = data.get("code_size")
    test_cost = data.get("test_cost")
    if test_cost is not None and data.get("march") != march:
        test_cost = None
    energy = data.get("energy")
    if energy is not None and data.get("energy_model") != energy_model:
        energy = None
    return EvaluatedPoint(
        config=ArchConfig.from_dict(data["config"]),
        area=float(data["area"]),
        cycles=None if cycles is None else int(cycles),
        code_size=None if code_size is None else int(code_size),
        test_cost=None if test_cost is None else int(test_cost),
        energy=None if energy is None else float(energy),
    )


class ResultCache:
    """Sharded directory of evaluated points, one JSON file per key.

    ``max_bytes`` (optional) bounds the entries' total size on disk:
    hits refresh the entry's mtime, and every put past the budget
    evicts least-recently-used entries back under it.  The budget
    governs entry files only — quarantine and lock plumbing are not
    counted.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        max_bytes: int | None = None,
    ) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise OSError(
                f"cache directory {self.directory} cannot be created "
                f"({exc}); pass a writable --cache-dir or set "
                "REPRO_CAMPAIGN_CACHE, or disable caching with --no-cache"
            ) from exc
        if not os.access(self.directory, os.W_OK):
            raise OSError(
                f"cache directory {self.directory} is not writable; "
                "pass a writable --cache-dir or set REPRO_CAMPAIGN_CACHE, "
                "or disable caching with --no-cache"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(
                f"max_bytes must be positive (got {max_bytes}); "
                "omit it for an unbounded cache"
            )
        self.max_bytes = max_bytes
        #: Always-on lifetime counters (reading them costs nothing on
        #: the hot path; a handful of integer adds per get/put).
        self.stats = CacheStats()
        self._persisted = CacheStats().as_dict()
        # The LRU budget needs a running total; one walk at
        # construction, then deltas per put/eviction keep it current.
        self._disk_bytes = (
            self.bytes_on_disk() if max_bytes is not None else 0
        )

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def _shard_dir(self, key: str) -> Path:
        return self.directory / "shards" / key[:SHARD_WIDTH]

    def _path(self, key: str) -> Path:
        """The sharded home of one key (where every write lands)."""
        return self._shard_dir(key) / f"{key}.json"

    def _flat_path(self, key: str) -> Path:
        """Where a pre-shard cache stored this key."""
        return self.directory / f"{key}.json"

    def _locate(self, key: str) -> Path:
        """The entry's current path, migrating a flat entry on touch.

        Migration is a rename into the shard — atomic, content
        untouched — so opening an old flat cache transparently becomes
        a sharded one as its keys are used; entries never touched
        simply stay where they are (every walk covers both layouts).
        """
        path = self._path(key)
        if path.exists():
            return path
        flat = self._flat_path(key)
        if flat.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(flat, path)
            except OSError:
                # A concurrent reader migrated (or removed) it first.
                return path if path.exists() else flat
            self.stats.migrated += 1
        return path

    def _entry_paths(self) -> Iterator[Path]:
        """Every entry file, sharded layout first, then flat leftovers."""
        shards = self.directory / "shards"
        if shards.is_dir():
            for shard in sorted(shards.iterdir()):
                if shard.is_dir():
                    yield from sorted(shard.glob("*.json"))
        for path in sorted(self.directory.glob("*.json")):
            if path.name != STATS_FILE:
                yield path

    def _quarantine(self, path: Path) -> Path:
        """Move a corrupt entry to ``<dir>/quarantine/``; count it."""
        qdir = self.directory / "quarantine"
        qdir.mkdir(exist_ok=True)
        target = qdir / path.name
        try:
            size = path.stat().st_size
            os.replace(path, target)
        except OSError:
            pass                    # a concurrent reader beat us to it
        else:
            self._disk_bytes -= size
        self.stats.quarantined += 1
        return target

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(
        self,
        workload: str,
        config: ArchConfig,
        width: int,
        march: str | None = None,
        energy_model: str | None = None,
    ) -> EvaluatedPoint | None:
        """Return the cached point, or None on a miss.

        A missing or unreadable file is a plain miss.  A *corrupt*
        entry (truncated bytes, wrong shape) is quarantined to
        ``<dir>/quarantine/`` and then counts as a miss — the killed
        writer that tore it degrades to one re-evaluation, never to a
        crash, a wrong result, or a file that stays poisonous forever.
        A well-formed entry from an older schema is a plain miss (stale
        is not corrupt).
        """
        path = self._locate(cache_key(workload, config, width))
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            point = decode_entry(json.loads(text), march, energy_model)
        except _CORRUPT_ERRORS:
            self._quarantine(path)
            self.stats.misses += 1
            return None
        if point is None:
            self.stats.misses += 1
            return None
        if self.max_bytes is not None:
            try:
                os.utime(path)          # the hit is the LRU touch
            except OSError:
                pass
        self.stats.hits += 1
        return point

    def put(
        self,
        workload: str,
        point: EvaluatedPoint,
        width: int,
        march: str | None = None,
        energy_model: str | None = None,
    ) -> None:
        """Persist one evaluated point (atomic: temp file + rename).

        Post-pass axes the caller did *not* compute are merged from the
        existing entry rather than erased: a study that only needs the
        energy axis restores points with ``test_cost=None`` (its march
        key differs) and must not wipe another study's persisted ATPG
        result when it writes its energies back — and vice versa.

        The whole read-merge-write-replace runs under a per-key
        ``flock`` (a sibling ``<key>.lock`` file in the key's shard —
        the entry itself cannot carry the lock because ``os.replace``
        swaps its inode), so two processes attaching different axes to
        the same entry serialise instead of dropping each other's
        writes.  Keys hash uniformly, so concurrent writers contend on
        a shard's directory inode 1/256th as often as on a flat layout.
        """
        key = cache_key(workload, point.config, width)
        self._shard_dir(key).mkdir(parents=True, exist_ok=True)
        if fcntl is None:
            self._put_locked(key, workload, point, width, march, energy_model)
        else:
            lock_path = self._shard_dir(key) / f"{key}.lock"
            with open(lock_path, "w") as lock_file:
                fcntl.flock(lock_file, fcntl.LOCK_EX)
                try:
                    self._put_locked(
                        key, workload, point, width, march, energy_model
                    )
                finally:
                    fcntl.flock(lock_file, fcntl.LOCK_UN)
        if self.max_bytes is not None and self._disk_bytes > self.max_bytes:
            self.compact()

    def _put_locked(
        self,
        key: str,
        workload: str,
        point: EvaluatedPoint,
        width: int,
        march: str | None,
        energy_model: str | None,
    ) -> None:
        path = self._locate(key)
        data = encode_entry(workload, point, width, march, energy_model)
        # Merge only when the caller computed exactly one post-pass axis
        # (a test-cost or energy attachment rewriting an existing entry);
        # a plain (area, cycles) store is a cache miss — the entry it
        # would merge from was just found absent — so the common fresh-
        # evaluation path pays no extra read.
        if (point.test_cost is None) != (point.energy is None):
            self.stats.merge_reads += 1
            try:
                old = json.loads(path.read_text())
                if old.get("schema") == _SCHEMA:
                    if point.test_cost is None and old.get(
                        "test_cost"
                    ) is not None:
                        data["test_cost"] = old["test_cost"]
                        data["march"] = old.get("march")
                        self.stats.merged_axes += 1
                    if point.energy is None and old.get(
                        "energy"
                    ) is not None:
                        data["energy"] = old["energy"]
                        data["energy_model"] = old.get("energy_model")
                        self.stats.merged_axes += 1
            except (OSError, ValueError, AttributeError):
                pass
        try:
            replaced = path.stat().st_size
        except OSError:
            replaced = 0
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = json.dumps(data, sort_keys=True)
        tmp.write_text(payload)
        os.replace(tmp, path)
        self._disk_bytes += len(payload) - replaced
        self.stats.puts += 1
        self.stats.bytes_written += len(payload)

    # ------------------------------------------------------------------
    # budget / compaction
    # ------------------------------------------------------------------
    def compact(self, max_bytes: int | None = None) -> dict:
        """Evict least-recently-used entries until under the budget.

        ``max_bytes`` overrides the instance budget for this call (so
        an unbounded cache can still be compacted explicitly).  Returns
        ``{"evicted", "bytes"}`` — entries removed and entry bytes
        remaining.  Eviction order is mtime (hits refresh it when a
        budget is set, so mtime *is* recency-of-use); each eviction
        also sweeps the entry's lock file.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        entries = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        self._disk_bytes = total
        evicted = 0
        if budget is not None:
            entries.sort()
            for _, size, path in entries:
                if self._disk_bytes <= budget:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                path.with_suffix(".lock").unlink(missing_ok=True)
                self._disk_bytes -= size
                evicted += 1
        self.stats.evictions += evicted
        return {"evicted": evicted, "bytes": self._disk_bytes}

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def verify(self, repair: bool = False) -> dict:
        """Sweep every entry; optionally quarantine the corrupt ones.

        Returns ``{"checked", "ok", "stale", "corrupt": [names],
        "quarantined"}``.  ``repair=True`` moves each corrupt entry to
        ``<dir>/quarantine/`` (what :meth:`get` would do lazily on its
        next lookup); ``stale`` counts well-formed entries from another
        schema, which are left in place.  Both shard and flat layouts
        are swept.
        """
        report: dict = {
            "checked": 0,
            "ok": 0,
            "stale": 0,
            "corrupt": [],
            "quarantined": 0,
        }
        for path in self._entry_paths():
            report["checked"] += 1
            try:
                point = decode_entry(json.loads(path.read_text()))
            except (OSError, *_CORRUPT_ERRORS):
                report["corrupt"].append(path.name)
                if repair:
                    self._quarantine(path)
                    report["quarantined"] += 1
                continue
            if point is None:
                report["stale"] += 1
            else:
                report["ok"] += 1
        return report

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard entry counts and bytes, ``"(flat)"`` for leftovers.

        Walks the directory; shards with no entries are omitted.
        """
        report: dict[str, dict] = {}

        def bucket(name: str, path: Path) -> None:
            entry = report.setdefault(name, {"entries": 0, "bytes": 0})
            entry["entries"] += 1
            try:
                entry["bytes"] += path.stat().st_size
            except OSError:
                pass

        shards = self.directory / "shards"
        if shards.is_dir():
            for shard in sorted(shards.iterdir()):
                if shard.is_dir():
                    for path in shard.glob("*.json"):
                        bucket(shard.name, path)
        for path in self.directory.glob("*.json"):
            if path.name != STATS_FILE:
                bucket("(flat)", path)
        return report

    def quarantined_entries(self) -> int:
        """Entries currently sitting in ``<dir>/quarantine/``."""
        qdir = self.directory / "quarantine"
        if not qdir.is_dir():
            return 0
        return sum(1 for _ in qdir.glob("*.json"))

    def bytes_on_disk(self) -> int:
        """Total size of every entry file, in bytes (walks the dir)."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    # ------------------------------------------------------------------
    # durable counters
    # ------------------------------------------------------------------
    def persist_stats(self) -> dict:
        """Fold this instance's counter deltas into ``<dir>/stats.json``.

        Accumulates across processes: the file's counters grow by the
        change since the last persist, under a ``flock`` so concurrent
        writers (several CLI runs, a service's periodic flush) merge
        instead of clobbering.  Returns the merged totals.  Idempotent
        — persisting twice with no new activity writes nothing.
        """
        delta = self.stats.delta(self._persisted)
        stats_path = self.directory / STATS_FILE
        if not any(delta.values()):
            return self.persisted_stats()
        lock_path = self.directory / "stats.lock"
        lock_file = open(lock_path, "w") if fcntl is not None else None
        try:
            if lock_file is not None:
                fcntl.flock(lock_file, fcntl.LOCK_EX)
            merged = self.persisted_stats()
            for key, value in delta.items():
                merged[key] = merged.get(key, 0) + value
            tmp = stats_path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(merged, sort_keys=True))
            os.replace(tmp, stats_path)
        finally:
            if lock_file is not None:
                fcntl.flock(lock_file, fcntl.LOCK_UN)
                lock_file.close()
        self._persisted = self.stats.as_dict()
        return merged

    def persisted_stats(self) -> dict:
        """The accumulated ``stats.json`` counters ({} when absent)."""
        try:
            data = json.loads((self.directory / STATS_FILE).read_text())
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Lock files are swept too but not counted — they are plumbing,
        not entries.
        """
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink()
            removed += 1
        shards = self.directory / "shards"
        if shards.is_dir():
            for path in shards.glob("*/*.lock"):
                path.unlink(missing_ok=True)
        for path in self.directory.glob("*.lock"):
            path.unlink(missing_ok=True)
        self._disk_bytes = 0
        return removed
