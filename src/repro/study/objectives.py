"""The objective registry: pluggable cost axes for studies.

The paper fixes the cost vector to (area, execution time, test cost);
this module makes the axis set a first-class, extensible concept.  An
:class:`Objective` declares how to *measure* one evaluated point and
whether the measurement only exists after a post-pass (the test-cost
axis needs :func:`repro.testcost.cost.attach_test_costs` to have run).
Studies refer to objectives by registry name, so an objective vector is
declarative data — JSON-safe, cacheable, comparable — rather than a
tuple-building method on :class:`~repro.explore.evaluate.EvaluatedPoint`.

The seeded registry reproduces the paper exactly: ``area`` (Fig. 2's x
axis), ``cycles`` (its y axis) and ``test_cost`` (the Fig. 8 third
axis).  New axes — energy proxies, code size, scenario-specific costs —
register with :func:`register_objective` and immediately work in specs,
Pareto fronts and the weighted-norm selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.explore.evaluate import EvaluatedPoint
from repro.explore.pareto import pareto_filter


@dataclass(frozen=True)
class Objective:
    """One cost axis: how to measure a point, and what that needs.

    ``measure`` maps a *feasible* evaluated point to a float cost
    (smaller is better, like every axis in the paper).
    ``requires_test_costs`` marks objectives that read
    ``EvaluatedPoint.test_cost`` and therefore need the analytical
    test-cost post-pass before they are defined;
    ``requires_energy`` marks objectives that read
    ``EvaluatedPoint.energy`` and need the switching-activity
    simulation pass (:func:`repro.energy.attach.attach_energy`).
    ``requires_fields`` names further :class:`EvaluatedPoint` fields
    that must be non-``None`` for the axis to be measurable — the
    generic guard for base axes whose field can be absent on points
    restored from older result caches (``code_size``).
    """

    name: str
    measure: Callable[[EvaluatedPoint], float]
    description: str = ""
    requires_test_costs: bool = False
    requires_energy: bool = False
    requires_fields: tuple[str, ...] = ()

    @property
    def needs_post_pass(self) -> bool:
        """Whether the axis only exists after an engine post-pass."""
        return self.requires_test_costs or self.requires_energy

    def available(self, point: EvaluatedPoint) -> bool:
        """Whether ``measure`` is defined on ``point`` right now."""
        if not point.feasible:
            return False
        if self.requires_test_costs and point.test_cost is None:
            return False
        if self.requires_energy and point.energy is None:
            return False
        return all(
            getattr(point, name, None) is not None
            for name in self.requires_fields
        )


_OBJECTIVES: dict[str, Objective] = {}


def register_objective(
    name: str,
    measure: Callable[[EvaluatedPoint], float],
    description: str = "",
    requires_test_costs: bool = False,
    requires_energy: bool = False,
    requires_fields: tuple[str, ...] = (),
) -> Objective:
    """Add (or replace) a named objective; returns the registered entry."""
    objective = Objective(
        name=name,
        measure=measure,
        description=description,
        requires_test_costs=requires_test_costs,
        requires_energy=requires_energy,
        requires_fields=requires_fields,
    )
    _OBJECTIVES[name] = objective
    return objective


def objective_names() -> list[str]:
    """Names accepted by :func:`objective_by_name` (sorted)."""
    return sorted(_OBJECTIVES)


def objective_by_name(name: str) -> Objective:
    try:
        return _OBJECTIVES[name]
    except KeyError:
        known = ", ".join(objective_names())
        raise KeyError(
            f"unknown objective {name!r} (known: {known})"
        ) from None


def resolve_objectives(
    objectives: Iterable[str | Objective],
) -> tuple[Objective, ...]:
    """Resolve a mixed name/instance sequence into objective entries."""
    resolved = tuple(
        o if isinstance(o, Objective) else objective_by_name(o)
        for o in objectives
    )
    if not resolved:
        raise ValueError("need at least one objective")
    return resolved


def cost_vector(
    point: EvaluatedPoint, objectives: Sequence[Objective]
) -> tuple[float, ...]:
    """The point's cost vector under ``objectives`` (all must be available)."""
    return tuple(o.measure(point) for o in objectives)


def pareto_front(
    points: Iterable[EvaluatedPoint],
    objectives: Iterable[str | Objective],
) -> list[EvaluatedPoint]:
    """Non-dominated subset of ``points`` under an objective vector.

    The front is *staged* the way the paper stages Fig. 8: objectives
    that need a post-pass (the test-cost and energy axes) are only
    measured on the front of the objectives that don't, "preserving the
    already achieved area/throughput ratio".  Staging also makes the
    front a pure function of the point set's base costs — a point that
    merely *happens* to carry a test cost or energy (say, restored from
    a result cache another study populated) cannot enter the candidate
    set from off the base front.  Points on which some objective is not
    measurable — infeasible, or awaiting the post-pass — are never
    candidates.

    Any number of objectives is supported; :func:`repro.explore.pareto.
    pareto_filter` runs the 2-D/3-D cases as O(n log n) sweeps and
    higher dimensions through the reference filter.
    """
    resolved = resolve_objectives(objectives)
    base = tuple(o for o in resolved if not o.needs_post_pass)
    pool = list(points)
    if base and len(base) < len(resolved):
        pool = pareto_filter(
            [p for p in pool if all(o.available(p) for o in base)],
            key=lambda p: cost_vector(p, base),
        )
    candidates = [
        p for p in pool if all(o.available(p) for o in resolved)
    ]
    return pareto_filter(
        candidates, key=lambda p: cost_vector(p, resolved)
    )


# ----------------------------------------------------------------------
# the seeded axes (the paper's three)
# ----------------------------------------------------------------------
register_objective(
    "area",
    lambda p: p.area,
    "silicon area from the component datasheets (Fig. 2 x axis)",
)
register_objective(
    "cycles",
    lambda p: float(p.cycles),
    "profile-weighted static cycle count (Fig. 2 y axis)",
)
register_objective(
    "test_cost",
    lambda p: float(p.test_cost),
    "analytical test application cycles, eqs. 11-14 (Fig. 8 z axis)",
    requires_test_costs=True,
)
register_objective(
    "energy",
    lambda p: float(p.energy),
    "switching-activity energy from simulated transport traces",
    requires_energy=True,
)
register_objective(
    "code_size",
    lambda p: float(p.code_size),
    "instruction-memory bits under the arch's move encoding",
    requires_fields=("code_size",),
)
register_objective(
    "edp",
    lambda p: float(p.energy) * float(p.cycles),
    "energy-delay product (energy x profile-weighted cycles)",
    requires_energy=True,
)
