"""Multi-chain test scheduling (the paper's noted extension).

Section 4: "It has been adopted that all scan chains are connected to
one single scan chain, so that the total test cost of the architecture
equals to the sum of the test cycles of the components.  Of course, in
the case of multiple scan chains, the total test cost will change due to
the scheduling of test patterns."

This module implements that scheduling: per-component test sessions are
assigned to ``k`` parallel test resources (chains / bus groups) with the
classic LPT (longest processing time first) heuristic, whose makespan is
within 4/3 of optimal.  ``k = 1`` reproduces the paper's summation
exactly; the VLIW-style ordering constraints (test X before Y) are
honoured by scheduling in dependency waves.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TestSession:
    """One schedulable component test."""

    name: str
    cycles: int
    after: tuple[str, ...] = ()     # components that must finish first


@dataclass
class TestSchedule:
    """The scheduled plan."""

    num_resources: int
    makespan: int
    assignment: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    # name -> (resource, start, end)

    def resource_of(self, name: str) -> int:
        return self.assignment[name][0]

    def window_of(self, name: str) -> tuple[int, int]:
        _r, start, end = self.assignment[name]
        return start, end


def schedule_tests(
    sessions: list[TestSession],
    num_resources: int = 1,
) -> TestSchedule:
    """LPT-schedule test sessions onto parallel test resources.

    Precedence (``after``) is handled by waves: a session becomes ready
    once all its predecessors have *finished*; within the ready set, the
    longest session is placed on the earliest-free resource, never before
    its predecessors' completion.
    """
    if num_resources < 1:
        raise ValueError("need at least one test resource")
    by_name = {s.name: s for s in sessions}
    for s in sessions:
        for dep in s.after:
            if dep not in by_name:
                raise ValueError(f"{s.name}: unknown predecessor {dep!r}")

    free_at = [0] * num_resources
    finish: dict[str, int] = {}
    schedule = TestSchedule(num_resources=num_resources, makespan=0)
    remaining = list(sessions)

    while remaining:
        ready = [
            s for s in remaining if all(d in finish for d in s.after)
        ]
        if not ready:
            cyclic = ", ".join(s.name for s in remaining)
            raise ValueError(f"circular test precedence among: {cyclic}")
        ready.sort(key=lambda s: (-s.cycles, s.name))
        session = ready[0]
        remaining.remove(session)

        earliest = max((finish[d] for d in session.after), default=0)
        resource = min(
            range(num_resources),
            key=lambda r: (max(free_at[r], earliest), r),
        )
        start = max(free_at[resource], earliest)
        end = start + session.cycles
        free_at[resource] = end
        finish[session.name] = end
        schedule.assignment[session.name] = (resource, start, end)
        schedule.makespan = max(schedule.makespan, end)
    return schedule


def sessions_from_breakdown(breakdown) -> list[TestSession]:
    """Build sessions from a :class:`~repro.testcost.cost.TestCostBreakdown`.

    The paper's interconnect-before-component order (Sec. 3.2: "it is
    necessary to perform the interconnect test of the sockets and busses
    before carrying out the functional test of the components") becomes
    a precedence edge from each unit's socket session to its functional
    session.
    """
    sessions: list[TestSession] = []
    for unit in breakdown.units:
        if not unit.counted:
            continue
        socket_name = f"{unit.unit_name}.sockets"
        sessions.append(TestSession(socket_name, unit.socket_cost))
        sessions.append(
            TestSession(
                unit.unit_name, unit.component_cost, after=(socket_name,)
            )
        )
    return sessions
