"""IR construction, validation and the interpreter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import IRBuilder, IRError, IRInterpreter
from repro.compiler.ir import Branch, Halt, Jump, Op
from repro.components.reference import alu_reference, cmp_reference

WORD = st.integers(min_value=0, max_value=0xFFFF)


def test_builder_basic_function():
    b = IRBuilder("t")
    b.block("entry")
    x = b.li(5)
    y = b.add(x, 7)
    b.store(10, y)
    b.halt()
    fn = b.finish()
    assert fn.entry == "entry"
    assert len(fn.blocks["entry"].ops) == 3
    assert isinstance(fn.blocks["entry"].terminator, Halt)


def test_unterminated_block_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.li(1)
    with pytest.raises(IRError, match="terminator"):
        b.finish()


def test_double_terminator_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.halt()
    with pytest.raises(IRError, match="already terminated"):
        b.halt()


def test_emit_after_terminator_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.halt()
    with pytest.raises(IRError):
        b.li(1)


def test_missing_jump_target_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.jump("nowhere")
    with pytest.raises(IRError, match="missing"):
        b.finish()


def test_duplicate_block_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.halt()
    with pytest.raises(IRError, match="duplicate"):
        b.block("entry")


def test_op_validation():
    with pytest.raises(IRError, match="unknown IR opcode"):
        Op("frobnicate", "d", 1, 2)
    with pytest.raises(IRError, match="destination"):
        Op("add", None, 1, 2)
    with pytest.raises(IRError, match="no destination"):
        Op("st", "d", 1, 2)


def test_listing_readable():
    b = IRBuilder("demo")
    b.block("entry")
    x = b.li(5)
    b.store(9, x)
    b.halt()
    listing = b.finish().listing()
    assert "demo" in listing and "entry:" in listing and "mem[9]" in listing


def test_successors():
    b = IRBuilder("t")
    b.block("a")
    c = b.li(1)
    b.branch(c, "b", "c")
    b.block("b")
    b.jump("c")
    b.block("c")
    b.halt()
    fn = b.finish()
    assert fn.blocks["a"].successors() == ["b", "c"]
    assert fn.blocks["b"].successors() == ["c"]
    assert fn.blocks["c"].successors() == []


# ----------------------------------------------------------------------
# interpreter semantics
# ----------------------------------------------------------------------
@settings(max_examples=60)
@given(WORD, WORD, st.sampled_from(["add", "sub", "and", "or", "xor",
                                    "shl", "shr", "sra"]))
def test_interp_alu_ops_match_reference(a, b_val, op):
    b = IRBuilder("t")
    b.block("entry")
    x = b.li(a)
    y = b.li(b_val)
    z = b._binary(op, x, y)
    b.store(0, z)
    b.halt()
    result = IRInterpreter(b.finish(), width=16).run()
    assert result.memory[0] == alu_reference(op, a, b_val, 16)


@settings(max_examples=40)
@given(WORD, WORD, st.sampled_from(["eq", "ne", "ltu", "geu", "lts", "ges"]))
def test_interp_cmp_ops_match_reference(a, b_val, op):
    b = IRBuilder("t")
    b.block("entry")
    z = b._binary(op, b.li(a), b.li(b_val))
    b.store(0, z)
    b.halt()
    result = IRInterpreter(b.finish(), width=16).run()
    assert result.memory[0] == cmp_reference(op, a, b_val, 16)


def test_interp_loop_and_profile():
    b = IRBuilder("t")
    b.block("entry")
    b.li(0, "%i")
    b.li(0, "%sum")
    b.jump("loop")
    b.block("loop")
    b.add("%sum", "%i", "%sum")
    b.add("%i", 1, "%i")
    c = b.ltu("%i", 5)
    b.branch(c, "loop", "done")
    b.block("done")
    b.store(0, "%sum")
    b.halt()
    result = IRInterpreter(b.finish(), width=16).run()
    assert result.memory[0] == 0 + 1 + 2 + 3 + 4
    assert result.block_counts == {"entry": 1, "loop": 5, "done": 1}


def test_interp_memory_ops():
    b = IRBuilder("t")
    b.block("entry")
    b.store(5, 0x8182)
    lo = b.load(5, mode="ld_ls")
    hi = b.load(5, mode="ld_h")
    b.store(6, lo)
    b.store(7, hi)
    b.halt()
    result = IRInterpreter(b.finish(), width=16).run()
    assert result.memory[6] == 0xFF82
    assert result.memory[7] == 0x81


def test_interp_undefined_vreg_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.add("%ghost", 1, "%x")
    b.halt()
    with pytest.raises(IRError, match="undefined vreg"):
        IRInterpreter(b.finish(), width=16).run()


def test_interp_op_budget():
    b = IRBuilder("t")
    b.block("entry")
    b.li(1, "%x")
    b.jump("spin")
    b.block("spin")
    b.add("%x", 1, "%x")
    b.jump("spin")
    fn = b.finish()
    interp = IRInterpreter(fn, width=16, max_ops=1000)
    with pytest.raises(IRError, match="budget"):
        interp.run()


def test_interp_branch_invert():
    b = IRBuilder("t")
    b.block("entry")
    c = b.eq(b.li(1), 2)       # false
    b.branch(c, "yes", "no", invert=True)   # inverted: taken
    b.block("yes")
    b.store(0, 1)
    b.halt()
    b.block("no")
    b.store(0, 2)
    b.halt()
    result = IRInterpreter(b.finish(), width=16).run()
    assert result.memory[0] == 1


def test_interp_initial_regs():
    b = IRBuilder("t")
    b.block("entry")
    b.add("%in", 1, "%out")
    b.store(0, "%out")
    b.halt()
    result = IRInterpreter(b.finish(), width=16).run({"%in": 41})
    assert result.memory[0] == 42
