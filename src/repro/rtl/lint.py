"""Self-consistency checks over emitted Verilog.

Two layers: :func:`lint_verilog` works on any Verilog text (balanced
``module``/``endmodule``, every instantiated module name defined or a
known primitive); :func:`lint_core` additionally cross-checks a
:class:`~repro.rtl.core.CoreDesign` — each structural submodule's
emitted port list must match its netlist's word-level ports bit for
bit, and every module the top instantiates must be emitted.

Both return a list of problem strings; an empty list means clean.
"""

from __future__ import annotations

import re

from repro.netlist.verilog import word_ports
from repro.rtl.core import CoreDesign

#: Verilog-1995 gate primitives the structural emitter uses.
PRIMITIVES = frozenset(
    ("buf", "not", "and", "or", "nand", "nor", "xor", "xnor")
)

_KEYWORDS = frozenset((
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "if", "else", "case",
    "endcase", "default", "function", "endfunction", "localparam",
    "parameter", "posedge", "negedge", "integer", "genvar", "generate",
    "endgenerate",
))

_MODULE_RE = re.compile(r"^\s*module\s+([A-Za-z_][\w$]*)", re.MULTILINE)
# ``modname instname (`` — an instantiation header (primitive or module).
_INSTANCE_RE = re.compile(
    r"^\s*([A-Za-z_][\w$]*)\s+([A-Za-z_][\w$]*)\s*\(", re.MULTILINE
)
_PORT_DECL_RE = re.compile(
    r"^\s*(input|output)\s+(?:wire\s+|reg\s+)?"
    r"(?:\[(\d+):(\d+)\]\s*)?(\\?\S+?)\s*[,)]?$",
    re.MULTILINE,
)


def lint_verilog(text: str) -> list[str]:
    """Text-level checks on one or more concatenated Verilog modules."""
    problems: list[str] = []
    defined = set(_MODULE_RE.findall(text))
    n_module = len(re.findall(r"^\s*module\b", text, re.MULTILINE))
    n_end = len(re.findall(r"^\s*endmodule\b", text, re.MULTILINE))
    if n_module != n_end:
        problems.append(
            f"unbalanced module/endmodule: {n_module} vs {n_end}"
        )
    for mod, inst in _INSTANCE_RE.findall(text):
        if mod in _KEYWORDS or inst in _KEYWORDS:
            continue
        if mod in PRIMITIVES:
            continue
        if mod not in defined:
            problems.append(
                f"instance {inst!r} references undefined module {mod!r}"
            )
    return problems


def _declared_ports(module_text: str) -> dict[str, int]:
    """Port name -> declared bit count, from one module's header.

    The structural emitter declares escaped per-bit ports (``\\a[0]``);
    those are grouped back into words here.  Behavioural ANSI headers
    (``input wire [7:0] x``) contribute their vector width.
    """
    header = module_text.split(");", 1)[0]
    widths: dict[str, int] = {}
    for direction, hi, lo, name in _PORT_DECL_RE.findall(header):
        name = name.lstrip("\\").rstrip(",")
        if hi and lo:
            bits = abs(int(hi) - int(lo)) + 1
        else:
            bits = 1
        match = re.match(r"^(.+)\[(\d+)\]$", name)
        if match:
            widths[match.group(1)] = widths.get(match.group(1), 0) + 1
        else:
            widths[name] = widths.get(name, 0) + bits
    return widths


def lint_core(design: CoreDesign) -> list[str]:
    """Full design audit: text lint + netlist/port cross-checks."""
    problems = lint_verilog(design.verilog)
    for name in design.instances:
        if name not in design.modules:
            problems.append(f"instantiated module {name!r} not emitted")
    for name, netlist in design.submodules.items():
        text = design.modules.get(name)
        if text is None:
            problems.append(f"submodule {name!r} missing from emission")
            continue
        declared = _declared_ports(text)
        for port in word_ports(netlist):
            got = declared.get(port.name)
            if got != port.width:
                problems.append(
                    f"{name}.{port.name}: declared {got} bits, "
                    f"netlist has {port.width}"
                )
        extra = set(declared) - {p.name for p in word_ports(netlist)}
        if extra:
            problems.append(
                f"{name}: declared ports not in netlist: {sorted(extra)}"
            )
    return problems
