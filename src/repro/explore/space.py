"""The architecture configuration space.

A point in the space is an :class:`ArchConfig`: bus count, number of
ALUs/comparators/shifters, and the register-file arrangement.  Every
configuration also carries the fixed per-architecture units (one LSU, one
PC, one immediate unit) which the paper excludes from the cost ranking
because "they always appear once for arbitrary architecture and
application".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache

from repro.components.library import (
    alu_spec,
    cmp_spec,
    imm_spec,
    lsu_spec,
    mul_spec,
    pc_spec,
    rf_spec,
    shifter_spec,
)
from repro.tta.arch import Architecture, UnitInstance


@dataclass(frozen=True)
class RFConfig:
    """One register file: size and port arrangement."""

    num_regs: int
    read_ports: int = 1
    write_ports: int = 1

    def __str__(self) -> str:
        return f"{self.num_regs}r{self.read_ports}R{self.write_ports}W"

    def to_dict(self) -> dict:
        return {
            "num_regs": self.num_regs,
            "read_ports": self.read_ports,
            "write_ports": self.write_ports,
        }

    @classmethod
    def from_dict(cls, data: dict) -> RFConfig:
        return cls(
            num_regs=int(data["num_regs"]),
            read_ports=int(data.get("read_ports", 1)),
            write_ports=int(data.get("write_ports", 1)),
        )


@dataclass(frozen=True)
class ArchConfig:
    """One candidate TTA template."""

    num_buses: int
    num_alus: int = 1
    num_cmps: int = 1
    num_shifters: int = 0
    num_muls: int = 0
    rfs: tuple[RFConfig, ...] = (RFConfig(8),)

    def label(self) -> str:
        rf_text = "+".join(str(rf) for rf in self.rfs)
        parts = [f"b{self.num_buses}", f"alu{self.num_alus}"]
        if self.num_cmps != 1:
            parts.append(f"cmp{self.num_cmps}")
        if self.num_shifters:
            parts.append(f"sh{self.num_shifters}")
        if self.num_muls:
            parts.append(f"mul{self.num_muls}")
        parts.append(rf_text)
        return "-".join(parts)

    @property
    def total_registers(self) -> int:
        return sum(rf.num_regs for rf in self.rfs)

    def to_dict(self) -> dict:
        return {
            "num_buses": self.num_buses,
            "num_alus": self.num_alus,
            "num_cmps": self.num_cmps,
            "num_shifters": self.num_shifters,
            "num_muls": self.num_muls,
            "rfs": [rf.to_dict() for rf in self.rfs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> ArchConfig:
        return cls(
            num_buses=int(data["num_buses"]),
            num_alus=int(data.get("num_alus", 1)),
            num_cmps=int(data.get("num_cmps", 1)),
            num_shifters=int(data.get("num_shifters", 0)),
            num_muls=int(data.get("num_muls", 0)),
            rfs=tuple(
                RFConfig.from_dict(rf)
                for rf in data.get("rfs", ({"num_regs": 8},))
            ),
        )


def build_architecture(config: ArchConfig, width: int = 16) -> Architecture:
    """Instantiate the template (full port->bus connectivity)."""
    units: list[UnitInstance] = []
    for i in range(config.num_alus):
        units.append(UnitInstance(f"alu{i}", alu_spec(width)))
    for i in range(config.num_cmps):
        units.append(UnitInstance(f"cmp{i}", cmp_spec(width)))
    for i in range(config.num_shifters):
        units.append(UnitInstance(f"shifter{i}", shifter_spec(width)))
    for i in range(config.num_muls):
        units.append(UnitInstance(f"mul{i}", mul_spec(width)))
    for i, rf in enumerate(config.rfs):
        units.append(
            UnitInstance(
                f"rf{i}",
                rf_spec(rf.num_regs, width, rf.read_ports, rf.write_ports),
            )
        )
    units.append(UnitInstance("lsu0", lsu_spec(width)))
    units.append(UnitInstance("pc", pc_spec(width)))
    units.append(UnitInstance("imm0", imm_spec(width)))
    return Architecture(
        name=config.label(),
        width=width,
        num_buses=config.num_buses,
        units=units,
    )


@lru_cache(maxsize=1024)
def build_architecture_cached(config: ArchConfig, width: int = 16) -> Architecture:
    """Shared :class:`Architecture` instance for a (config, width) pair.

    ``ArchConfig`` is frozen, so equal configs always instantiate the
    same template; the evaluation pipeline and the test-cost layer both
    consult this cache instead of rebuilding (``attach_test_costs`` used
    to reconstruct every Pareto point's architecture from scratch).
    Callers must treat the returned object as immutable — anyone who
    needs a private mutable copy should call :func:`build_architecture`.
    """
    return build_architecture(config, width)


#: Register-file arrangements offered to the Crypt exploration.
_CRYPT_RF_OPTIONS: tuple[tuple[RFConfig, ...], ...] = (
    (RFConfig(4),),
    (RFConfig(8),),
    (RFConfig(12),),
    (RFConfig(8), RFConfig(12)),            # the Fig. 9 arrangement
    (RFConfig(8, read_ports=2), RFConfig(12)),
    (RFConfig(12, read_ports=2), RFConfig(12, read_ports=2)),
    (RFConfig(16, read_ports=2, write_ports=2),),
)


def crypt_space() -> list[ArchConfig]:
    """The configuration grid explored for the Crypt application.

    4 bus counts x 3 ALU counts x 2 shifter options x 7 RF arrangements
    = 168 candidate templates, the same order of magnitude as the MOVE
    exploration sweeps.
    """
    space = []
    for buses, alus, shifters, rfs in itertools.product(
        (1, 2, 3, 4), (1, 2, 3), (0, 1), _CRYPT_RF_OPTIONS
    ):
        space.append(
            ArchConfig(
                num_buses=buses,
                num_alus=alus,
                num_shifters=shifters,
                rfs=rfs,
            )
        )
    return space


def small_space() -> list[ArchConfig]:
    """A fast sub-grid for unit tests and quick demos (12 points)."""
    space = []
    for buses, alus in itertools.product((1, 2, 3), (1, 2)):
        for rfs in ((RFConfig(8),), (RFConfig(8), RFConfig(12))):
            space.append(ArchConfig(num_buses=buses, num_alus=alus, rfs=rfs))
    return space


def dsp_space() -> list[ArchConfig]:
    """A MUL-equipped sub-grid for the DSP kernels (FIR, dot product).

    The plain Crypt grids carry no multiplier, so ``mul``-using workloads
    compile on none of their points; this grid adds one MUL to every
    template (12 points).
    """
    space = []
    for buses, alus, rfs in itertools.product(
        (2, 3, 4),
        (1, 2),
        ((RFConfig(8),), (RFConfig(8, read_ports=2), RFConfig(12))),
    ):
        space.append(
            ArchConfig(num_buses=buses, num_alus=alus, num_muls=1, rfs=rfs)
        )
    return space


#: Named configuration grids addressable from specs and the CLI.
_SPACE_BUILDERS = {
    "crypt": crypt_space,
    "small": small_space,
    "dsp": dsp_space,
}


def space_names() -> list[str]:
    """Names accepted by :func:`space_by_name` (sorted)."""
    return sorted(_SPACE_BUILDERS)


def space_by_name(name: str) -> list[ArchConfig]:
    """Build a named configuration grid (``crypt``, ``small``, ``dsp``)."""
    try:
        builder = _SPACE_BUILDERS[name]
    except KeyError:
        known = ", ".join(space_names())
        raise KeyError(f"unknown space {name!r} (known: {known})") from None
    return builder()
