"""Ablation — multiple scan chains / test resources (Sec. 4's remark).

"In the case of multiple scan chains, the total test cost will change
due to the scheduling of test patterns."  This bench schedules the
Fig. 9 architecture's per-component tests (socket scan before functional
test, per the paper's mandatory order) onto 1-4 parallel test resources.
"""

from benchmarks.conftest import save_artifact
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import (
    architecture_test_cost,
    schedule_tests,
    sessions_from_breakdown,
)


def test_multichain_ablation(benchmark):
    arch = build_architecture(
        ArchConfig(num_buses=2, rfs=(RFConfig(8), RFConfig(12)))
    )
    breakdown = architecture_test_cost(arch)
    sessions = sessions_from_breakdown(breakdown)

    def sweep():
        return {
            k: schedule_tests(sessions, num_resources=k) for k in (1, 2, 3, 4)
        }

    schedules = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # one chain reproduces the paper's summation exactly
    assert schedules[1].makespan == breakdown.total
    spans = [schedules[k].makespan for k in (1, 2, 3, 4)]
    assert all(a >= b for a, b in zip(spans, spans[1:]))
    # parallelism has a floor: a unit's socket+functional chain
    longest_chain = max(
        u.socket_cost + u.component_cost
        for u in breakdown.units
        if u.counted
    )
    assert spans[-1] >= longest_chain

    lines = [
        "Ablation: test scheduling across parallel test resources",
        f"architecture: {arch.name}, sessions: {len(sessions)} "
        "(socket scan precedes each functional test)",
        f"{'resources':>10}{'makespan':>10}{'speedup':>9}",
    ]
    for k in (1, 2, 3, 4):
        lines.append(
            f"{k:>10}{schedules[k].makespan:>10}"
            f"{spans[0] / schedules[k].makespan:>9.2f}"
        )
    save_artifact("ablation_multichain", "\n".join(lines))
