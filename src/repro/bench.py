"""The tracked evaluation-pipeline benchmark suite.

Times end-to-end exploration sweeps twice per (workload, space) pair —
once through a **reference** pipeline that re-does per-configuration
work the way the pre-caching evaluator did (fresh architecture, fresh
netlist statistics, fresh register allocation, quadratic Pareto filter)
and once through the **optimized** study-engine path (exhaustive
strategy over :class:`~repro.explore.evaluate.EvaluationContext`) —
asserts both produce identical Pareto sets,
and writes the numbers to ``BENCH_evaluate.json`` so the perf
trajectory is tracked in version control from PR 2 onward.

Run via ``python -m repro bench`` or ``python benchmarks/bench_evaluate.py``.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
from datetime import datetime, timezone
from pathlib import Path
from time import perf_counter
from typing import Callable

from repro.apps.registry import build_workload
from repro.compiler.interp import IRInterpreter
from repro.compiler.regalloc import AllocationError
from repro.compiler.scheduler import ScheduleError, compile_ir
from repro.components.library import component_datasheet
from repro.explore.evaluate import EvaluatedPoint
from repro.explore.pareto import pareto_filter, pareto_filter_naive
from repro.explore.space import ArchConfig, build_architecture, space_by_name
from repro.netlist.stats import netlist_stats
from repro.study.engine import run_search
from repro.tta.arch import BUS_AREA_PER_BIT, CONNECTION_AREA, Architecture

#: Suite name -> (space name, rough sweep size) of the timed sweeps.
SUITES: dict[str, str] = {
    "small": "small",
    "medium": "crypt",
}

#: Workloads timed per suite (no multiplier, so every space maps them).
BENCH_WORKLOADS: tuple[str, ...] = ("crypt", "gcd")

#: Synthetic point count for the Pareto-filter micro-benchmark.
PARETO_POINTS = 2000

#: Benchmark file written at the repository root (tracked in git).
DEFAULT_OUTPUT = "BENCH_evaluate.json"

_SCHEMA = 1


def _reference_area(arch: Architecture) -> float:
    """``Architecture.area()`` with the pre-caching cost structure.

    The seed's area model re-ran :func:`netlist_stats` for every unit of
    every configuration; this mirrors that exactly (same formulas, same
    rounding — the benchmark asserts value equality against the cached
    path), so the "before" timing charges the work the caches remove.
    """
    component_area = 0.0
    for unit in arch.units.values():
        datasheet = component_datasheet(unit.spec)
        netlist = datasheet.netlist()
        if netlist is None:                 # RF macro: formula, no netlist
            core = datasheet.core_area
        else:
            core = netlist_stats(netlist).area
        component_area += round(
            core + datasheet.register_area + datasheet.socket_area, 3
        )
    bus_area = arch.num_buses * arch.width * BUS_AREA_PER_BIT
    switch_area = arch.num_connections * CONNECTION_AREA
    return round(component_area + bus_area + switch_area, 3)


def _evaluate_config_reference(
    config: ArchConfig, workload, profile: dict[str, int], width: int
) -> EvaluatedPoint:
    """The pre-caching evaluation of one configuration.

    Reproduces what ``evaluate_config`` did before the shared-work
    caches: build the architecture from scratch, recompute the netlist
    statistics behind the area model, and compile with a fresh register
    allocation and a full workload re-validation.
    """
    arch = build_architecture(config, width)
    area = _reference_area(arch)
    try:
        compiled = compile_ir(workload, arch, profile=profile)
    except (AllocationError, ScheduleError):
        return EvaluatedPoint(config=config, area=area, cycles=None)
    return EvaluatedPoint(
        config=config, area=area, cycles=compiled.static_cycles(profile)
    )


def _time_sweep(evaluate: Callable[[], list[EvaluatedPoint]]) -> tuple[
    float, list[EvaluatedPoint]
]:
    start = perf_counter()
    points = evaluate()
    return perf_counter() - start, points


def bench_sweep(
    workload_name: str, space_name: str, suite: str, width: int = 16
) -> dict:
    """Benchmark one (workload, space) sweep, reference vs. optimized."""
    workload = build_workload(workload_name)
    profile = IRInterpreter(workload, width=width).run().block_counts
    configs = space_by_name(space_name)

    # Warm the netlist-construction caches (the seed also built each
    # component netlist only once per process), then time.
    _evaluate_config_reference(configs[0], workload, profile, width)

    before_s, ref_points = _time_sweep(
        lambda: [
            _evaluate_config_reference(c, workload, profile, width)
            for c in configs
        ]
    )
    # The optimized sweep is timed through the study layer (exhaustive
    # strategy -> cache-aware evaluator -> EvaluationContext), so the
    # tracked speedup also guards the Study plumbing against per-point
    # overhead on the hot path.
    after_s, opt_points = _time_sweep(
        lambda: run_search(
            workload, configs, width=width,
            strategy="exhaustive", profile=profile,
        ).points
    )

    if [(p.label, p.area, p.cycles) for p in ref_points] != [
        (p.label, p.area, p.cycles) for p in opt_points
    ]:
        raise AssertionError(
            f"{workload_name}/{space_name}: optimized pipeline diverged "
            "from the reference evaluation"
        )
    feasible = [p for p in opt_points if p.feasible]
    ref_front = pareto_filter_naive(
        [p for p in ref_points if p.feasible], key=lambda p: p.cost2d()
    )
    opt_front = pareto_filter(feasible, key=lambda p: p.cost2d())
    if [p.label for p in ref_front] != [p.label for p in opt_front]:
        raise AssertionError(
            f"{workload_name}/{space_name}: sort-based Pareto diverged "
            "from the naive filter"
        )
    return {
        "suite": suite,
        "workload": workload_name,
        "space": space_name,
        "configs": len(configs),
        "feasible": len(feasible),
        "pareto": len(opt_front),
        "before_s": round(before_s, 4),
        "after_s": round(after_s, 4),
        "speedup": round(before_s / after_s, 2) if after_s > 0 else None,
        "pareto_identical": True,
    }


def bench_pareto(num_points: int = PARETO_POINTS, seed: int = 0) -> dict:
    """Micro-benchmark: naive O(n^2) vs sort-based Pareto filtering."""
    rng = random.Random(seed)
    points = [
        (rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(num_points)
    ]
    t0 = perf_counter()
    naive = pareto_filter_naive(points, key=lambda p: p)
    naive_s = perf_counter() - t0
    t0 = perf_counter()
    fast = pareto_filter(points, key=lambda p: p)
    sweep_s = perf_counter() - t0
    if naive != fast:
        raise AssertionError("sort-based Pareto diverged on synthetic points")
    return {
        "points": num_points,
        "front": len(fast),
        "naive_s": round(naive_s, 4),
        "sweep_s": round(sweep_s, 4),
        "speedup": round(naive_s / sweep_s, 1) if sweep_s > 0 else None,
    }


def host_metadata() -> dict:
    """Environment the numbers were measured on.

    Timings are only comparable within one environment; recording the
    interpreter (version + implementation), OS and CPU shape next to
    every report makes cross-machine deltas in the tracked file
    explainable instead of mysterious.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def run_benchmarks(
    suites: tuple[str, ...] = ("small", "medium"),
    workloads: tuple[str, ...] = BENCH_WORKLOADS,
    width: int = 16,
) -> dict:
    """Run the benchmark suite and return the report dict."""
    sweeps = []
    for suite in suites:
        space_name = SUITES[suite]
        for workload_name in workloads:
            sweeps.append(bench_sweep(workload_name, space_name, suite, width))

    report: dict = {
        "schema": _SCHEMA,
        "generated_by": "python -m repro bench",
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "host": host_metadata(),
        "sweeps": sweeps,
        "pareto_microbench": bench_pareto(),
    }
    for suite in suites:
        rows = [s for s in sweeps if s["suite"] == suite]
        before = sum(s["before_s"] for s in rows)
        after = sum(s["after_s"] for s in rows)
        report[f"{suite}_speedup"] = (
            round(before / after, 2) if after > 0 else None
        )
    return report


def format_report(report: dict) -> str:
    """Human-readable table of one benchmark report."""
    lines = [
        "evaluation pipeline benchmarks "
        f"({report['host']['python']}, {report['host']['cpus']} cpus)",
        f"{'sweep':<24} {'configs':>7} {'before':>9} {'after':>9} {'speedup':>8}",
    ]
    for s in report["sweeps"]:
        label = f"{s['workload']}/{s['space']}"
        lines.append(
            f"{label:<24} {s['configs']:>7} {s['before_s']:>8.2f}s "
            f"{s['after_s']:>8.2f}s {s['speedup']:>7.2f}x"
        )
    for key in ("small_speedup", "medium_speedup"):
        if report.get(key) is not None:
            lines.append(f"{key.replace('_', ' ')}: {report[key]:.2f}x")
    pareto = report["pareto_microbench"]
    lines.append(
        f"pareto filter ({pareto['points']} pts): naive "
        f"{pareto['naive_s']:.3f}s vs sweep {pareto['sweep_s']:.4f}s "
        f"({pareto['speedup']}x)"
    )
    return "\n".join(lines)


def write_report(report: dict, path: str | Path = DEFAULT_OUTPUT) -> Path:
    """Persist a report next to previous runs (JSON, tracked in git)."""
    out = Path(path)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


#: JSONL file each bench run appends one line to (tracked in git).
DEFAULT_HISTORY = "benchmarks/history.jsonl"


def _current_commit() -> str | None:
    """Short commit hash of the working tree, or None outside git."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except OSError:
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def history_line(report: dict, commit: str | None = None) -> dict:
    """One compact history record from a full benchmark report.

    Keeps only what a trend plot needs — when, which commit, and the
    headline speedups — so the tracked JSONL stays small while
    ``BENCH_evaluate.json`` keeps only the latest full report.
    """
    return {
        "timestamp": report["generated_at"],
        "commit": commit if commit is not None else _current_commit(),
        "small_speedup": report.get("small_speedup"),
        "medium_speedup": report.get("medium_speedup"),
        "python": report["host"]["python"],
    }


def append_history(
    report: dict, path: str | Path = DEFAULT_HISTORY,
    commit: str | None = None,
) -> Path:
    """Append one :func:`history_line` record to the history JSONL."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(history_line(report, commit=commit), sort_keys=True)
    with out.open("a") as handle:
        handle.write(line + "\n")
    return out


def main(argv: list[str] | None = None) -> int:
    """Stand-alone entry point (``python benchmarks/bench_evaluate.py``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite", choices=("small", "medium", "full"), default="full"
    )
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--no-write", action="store_true")
    parser.add_argument("--history", default=DEFAULT_HISTORY)
    args = parser.parse_args(argv)
    suites = ("small", "medium") if args.suite == "full" else (args.suite,)
    report = run_benchmarks(suites=suites)
    print(format_report(report))
    if not args.no_write:
        out = write_report(report, args.output)
        print(f"wrote {out}", file=sys.stderr)
        history = append_history(report, args.history)
        print(f"appended {history}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
