"""The search-strategy registry: how a study walks its space.

A strategy decides *which* configurations are evaluated and in what
order; it never evaluates anything itself.  It receives a
:class:`SearchJob` whose ``evaluate``/``evaluate_many`` hooks are wired
by the engine to the shared-work :class:`~repro.explore.evaluate.
EvaluationContext`, the on-disk result cache and the process pool — so
every strategy transparently gets caching, resume and parallel fan-out,
and the exhaustive strategy run serially is bit-identical to evaluating
the space point by point through one context.

Four strategies are seeded:

* ``exhaustive``          — the paper's full grid sweep (Sec. 2);
* ``iterative``           — the MOVE-style neighbourhood search that
  expands only non-dominated candidates;
* ``random``              — a budgeted uniform sample of the space, the
  baseline every smarter search must beat;
* ``simulated_annealing`` — a seeded Metropolis walk over the same
  neighbourhood model, for spaces too rugged for greedy expansion.
"""

from __future__ import annotations

import inspect
import math
import random
from dataclasses import dataclass, field
from typing import Callable

from repro.compiler.ir import IRFunction
from repro.explore.evaluate import EvaluatedPoint
from repro.explore.pareto import pareto_filter
from repro.explore.space import ArchConfig
from repro.resilience.checkpoint import rng_state_from_json, rng_state_to_json


@dataclass
class SearchJob:
    """Everything one search may touch, with evaluation behind hooks.

    ``evaluate`` costs one configuration; ``evaluate_many`` costs an
    ordered batch (and may fan out over a process pool).  Both are
    cache-aware when the engine holds a result cache.
    """

    workload: IRFunction
    profile: dict[str, int]
    space: list[ArchConfig]
    width: int
    evaluate: Callable[[ArchConfig], EvaluatedPoint]
    evaluate_many: Callable[[list[ArchConfig]], list[EvaluatedPoint]]
    #: Checkpoint hooks (both optional; wired by the engine when the
    #: study checkpoints).  ``save_state`` receives a JSON-safe dict of
    #: the strategy's mid-search state after every wave/step;
    #: ``resume_state`` is the last such dict of an interrupted run.
    #: Enumerating strategies (exhaustive, random) need neither — their
    #: walk replays deterministically through the checkpoint's point
    #: overlay — so only the stateful walks implement them.
    save_state: Callable[[dict], None] | None = None
    resume_state: dict | None = None


@dataclass
class SearchOutcome:
    """What a strategy produced: points plus search accounting.

    The move counters instrument strategies that *propose* candidate
    configurations rather than enumerate them: ``moves_proposed``
    counts candidate configurations the walk generated,
    ``moves_accepted`` the proposals the strategy kept (a Metropolis
    acceptance, a frontier expansion), ``moves_rejected`` the rest.
    Enumerating strategies (exhaustive, random) leave all three at 0.
    """

    points: list[EvaluatedPoint]
    evaluations: int
    iterations: int = 1
    frontier_history: list[int] = field(default_factory=list)
    moves_proposed: int = 0
    moves_accepted: int = 0
    moves_rejected: int = 0


StrategyFn = Callable[..., SearchOutcome]


@dataclass(frozen=True)
class StrategyEntry:
    """One registered strategy: the runner plus its documentation."""

    name: str
    runner: StrategyFn
    description: str

    @property
    def params(self) -> str:
        """Human-readable parameter list (from the runner signature)."""
        parameters = [
            f"{p.name}={p.default!r}" if p.default is not p.empty else p.name
            for p in inspect.signature(self.runner).parameters.values()
            if p.name != "job"
        ]
        return ", ".join(parameters) if parameters else "(none)"


_STRATEGIES: dict[str, StrategyEntry] = {}


def register_strategy(
    name: str, runner: StrategyFn, description: str = ""
) -> StrategyEntry:
    """Add (or replace) a named strategy; returns the registered entry."""
    entry = StrategyEntry(name=name, runner=runner, description=description)
    _STRATEGIES[name] = entry
    return entry


def strategy_names() -> list[str]:
    """Names accepted by :func:`strategy_by_name` (sorted)."""
    return sorted(_STRATEGIES)


def strategy_by_name(name: str) -> StrategyEntry:
    try:
        return _STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise KeyError(
            f"unknown strategy {name!r} (known: {known})"
        ) from None


def validate_strategy_params(name: str, params: dict | None) -> None:
    """Check ``params`` against the strategy's signature (``ValueError``).

    Validation is separate from execution so a ``TypeError`` raised
    *inside* a running strategy (deep in the compile/evaluate hot path)
    is never mistaken for a bad parameter list.
    """
    entry = strategy_by_name(name)
    signature = inspect.signature(entry.runner)
    try:
        signature.bind(None, **(params or {}))
    except TypeError as exc:
        raise ValueError(
            f"strategy {name!r} rejected its params "
            f"(accepts: {entry.params}): {exc}"
        ) from None


def run_strategy(
    name: str, job: SearchJob, params: dict | None = None
) -> SearchOutcome:
    """Run a registered strategy; unknown params raise ``ValueError``."""
    validate_strategy_params(name, params)
    return strategy_by_name(name).runner(job, **(params or {}))


# ----------------------------------------------------------------------
# exhaustive — the paper's full sweep
# ----------------------------------------------------------------------
def exhaustive_search(job: SearchJob) -> SearchOutcome:
    """Evaluate every configuration of the space, in space order."""
    points = job.evaluate_many(list(job.space))
    return SearchOutcome(points=points, evaluations=len(points))


# ----------------------------------------------------------------------
# random — budgeted uniform sampling
# ----------------------------------------------------------------------
def random_search(
    job: SearchJob, budget: int = 32, seed: int = 0
) -> SearchOutcome:
    """Evaluate a uniform sample of at most ``budget`` configurations.

    Sampling is without replacement from the job's space with a seeded
    ``random.Random``, so a fixed seed reproduces the exact point list;
    sampled indices are evaluated in space order, keeping the result a
    deterministic sublist of the exhaustive sweep.
    """
    budget = int(budget)                # str params arrive from --param
    if budget < 1:
        raise ValueError("random strategy needs budget >= 1")
    size = min(budget, len(job.space))
    rng = random.Random(seed)
    indices = sorted(rng.sample(range(len(job.space)), size))
    points = job.evaluate_many([job.space[i] for i in indices])
    return SearchOutcome(points=points, evaluations=len(points))


# ----------------------------------------------------------------------
# iterative — MOVE-style neighbourhood search
# ----------------------------------------------------------------------
def iterative_search(
    job: SearchJob,
    seeds: list[ArchConfig] | None = None,
    max_evaluations: int = 80,
) -> SearchOutcome:
    """Expand non-dominated neighbourhoods from seed templates.

    The MOVE-style loop — one architectural parameter mutated at a
    time, only frontier candidates expanded —
    with each wave's unexplored neighbourhood evaluated as one
    ``evaluate_many`` batch, so the search shares the sweep caches, the
    on-disk result cache, and the process-pool fan-out.  ``seeds``
    accepts :class:`~repro.explore.space.ArchConfig` instances or their
    dict form (what a JSON spec carries).

    A non-empty job space *bounds the walk*: seeds and neighbourhood
    expansions outside the declared space are skipped, so a study's
    points are always drawn from the space its spec names (should no
    seed fall inside the space, the search starts from the space's
    first template).  An empty space leaves the walk unbounded over
    the neighbourhood model (the :func:`repro.study.run_search`
    in-memory surface).
    """
    from repro.explore.iterative import default_seeds, neighbours

    max_evaluations = int(max_evaluations)
    if seeds is None:
        seeds = default_seeds()
    seeds = [
        ArchConfig.from_dict(s) if isinstance(s, dict) else s for s in seeds
    ]

    allowed: set[str] | None = None
    if job.space:
        allowed = {config.label() for config in job.space}
        seeds = [c for c in seeds if c.label() in allowed]
        if not seeds:
            seeds = [job.space[0]]

    seen: dict[str, EvaluatedPoint] = {}
    frontier: list[EvaluatedPoint] = []
    queue: list[ArchConfig] = list(seeds)
    evaluations = 0
    iterations = 0
    history: list[int] = []
    proposed = accepted = 0

    if job.resume_state is not None:
        # Continue an interrupted walk from its last completed wave:
        # re-evaluating the seen set is free (the engine overlays the
        # checkpoint's points), and dominance filtering is transitive,
        # so the rebuilt frontier equals the incremental one.
        state = job.resume_state
        for config_dict in state["order"]:
            config = ArchConfig.from_dict(config_dict)
            seen[config.label()] = job.evaluate(config)
        frontier = pareto_filter(
            [p for p in seen.values() if p.feasible],
            key=lambda p: p.cost2d(),
        )
        queue = [ArchConfig.from_dict(c) for c in state["queue"]]
        evaluations = int(state["evaluations"])
        iterations = int(state["iterations"])
        history = list(state["history"])
        proposed = int(state["proposed"])
        accepted = int(state["accepted"])

    while queue and evaluations < max_evaluations:
        iterations += 1
        # One wave: the queue's unseen configs, deduplicated in order,
        # truncated to the remaining budget.
        batch: list[ArchConfig] = []
        batch_labels: set[str] = set()
        for config in queue:
            label = config.label()
            if label in seen or label in batch_labels:
                continue
            if evaluations + len(batch) >= max_evaluations:
                break
            batch.append(config)
            batch_labels.add(label)

        expanded: list[EvaluatedPoint] = []
        for config, point in zip(batch, job.evaluate_many(batch)):
            seen[config.label()] = point
            if point.feasible:
                expanded.append(point)
        evaluations += len(batch)
        frontier = pareto_filter(
            frontier + expanded, key=lambda p: p.cost2d()
        )
        history.append(len(frontier))

        # Expand only the frontier's unexplored neighbourhoods.  Each
        # generated neighbour is a proposed move; the ones surviving
        # the seen/space filters are accepted into the next wave.
        queue = []
        for point in frontier:
            for neighbour in neighbours(point.config):
                proposed += 1
                label = neighbour.label()
                if label in seen:
                    continue
                if allowed is not None and label not in allowed:
                    continue
                queue.append(neighbour)
                accepted += 1

        if job.save_state is not None:
            job.save_state({
                "order": [p.config.to_dict() for p in seen.values()],
                "queue": [c.to_dict() for c in queue],
                "evaluations": evaluations,
                "iterations": iterations,
                "history": list(history),
                "proposed": proposed,
                "accepted": accepted,
            })

    return SearchOutcome(
        points=list(seen.values()),
        evaluations=evaluations,
        iterations=iterations,
        frontier_history=history,
        moves_proposed=proposed,
        moves_accepted=accepted,
        moves_rejected=proposed - accepted,
    )


# ----------------------------------------------------------------------
# simulated annealing — Metropolis walk over the neighbourhood model
# ----------------------------------------------------------------------
def simulated_annealing_search(
    job: SearchJob,
    start: ArchConfig | dict | None = None,
    max_evaluations: int = 60,
    seed: int = 0,
    initial_temp: float = 0.35,
    cooling: float = 0.92,
) -> SearchOutcome:
    """Seeded, budgeted annealing over single-parameter mutations.

    The walk proposes one uniformly-drawn neighbour of the current
    template per step (the :func:`repro.explore.iterative.neighbours`
    model — the same moves the iterative strategy expands) and accepts
    it per Metropolis on a scalarised cost: area and cycles, each
    normalised by the first feasible point's values so neither axis
    drowns the other.  Infeasible proposals are never accepted but do
    consume budget — the search learns where the space's holes are.

    Fully deterministic under a fixed ``seed`` (one ``random.Random``,
    deterministic neighbour order), and bounded by the job's space when
    one is declared, exactly like the iterative strategy.  ``start``
    accepts an :class:`~repro.explore.space.ArchConfig` or its dict
    form (what a JSON spec carries); by default the walk starts from
    the space's first template (or the default seed when unbounded).
    """
    from repro.explore.iterative import default_seeds, neighbours

    max_evaluations = int(max_evaluations)
    if max_evaluations < 1:
        raise ValueError("simulated_annealing needs max_evaluations >= 1")
    cooling = float(cooling)
    if not 0.0 < cooling < 1.0:
        raise ValueError("cooling must be in (0, 1)")
    temp = float(initial_temp)
    if temp <= 0.0:
        raise ValueError("initial_temp must be > 0")
    rng = random.Random(int(seed))

    allowed: set[str] | None = None
    if job.space:
        allowed = {config.label() for config in job.space}
    if start is None:
        start = job.space[0] if job.space else default_seeds()[0]
    elif isinstance(start, dict):
        start = ArchConfig.from_dict(start)
    if allowed is not None and start.label() not in allowed:
        start = job.space[0]

    seen: dict[str, EvaluatedPoint] = {}

    def evaluate(config: ArchConfig) -> EvaluatedPoint:
        label = config.label()
        point = seen.get(label)
        if point is None:
            point = job.evaluate(config)
            seen[label] = point
        return point

    reference: tuple[float, float] | None = None

    def cost(point: EvaluatedPoint) -> float:
        nonlocal reference
        if not point.feasible:
            return math.inf
        if reference is None:
            reference = (point.area, float(point.cycles))
        return point.area / reference[0] + point.cycles / reference[1]

    current_config = start
    if job.resume_state is not None:
        # Resume the interrupted walk mid-sequence: restore the
        # normalisation reference *before* replaying the seen set (the
        # engine's checkpoint overlay makes the replay free), then the
        # RNG state — the resumed walk draws exactly the proposals the
        # uninterrupted walk would have drawn.
        state = job.resume_state
        reference = (
            tuple(state["reference"]) if state["reference"] else None
        )
        for config_dict in state["order"]:
            evaluate(ArchConfig.from_dict(config_dict))
        rng.setstate(rng_state_from_json(state["rng"]))
        current_config = ArchConfig.from_dict(state["current"])
        current_cost = (
            math.inf if state["current_cost"] is None
            else float(state["current_cost"])
        )
        temp = float(state["temp"])
        steps = int(state["steps"])
        proposals = int(state["proposals"])
        accepted = int(state["accepted"])
        history = list(state["history"])
        frontier: list[EvaluatedPoint] = pareto_filter(
            [p for p in seen.values() if p.feasible],
            key=lambda p: p.cost2d(),
        )
    else:
        current_cost = cost(evaluate(start))
        frontier = pareto_filter(
            [p for p in seen.values() if p.feasible],
            key=lambda p: p.cost2d(),
        )
        history = [len(frontier)]
        steps = 0
        proposals = accepted = 0
    # Each step proposes at most one fresh evaluation; stale proposals
    # (already-seen neighbours) cost a step but no budget, so cap steps
    # to keep a fully-explored neighbourhood from spinning forever.
    max_steps = max_evaluations * 8
    while len(seen) < max_evaluations and steps < max_steps:
        steps += 1
        candidates = neighbours(current_config)
        if allowed is not None:
            candidates = [c for c in candidates if c.label() in allowed]
        if not candidates:
            break
        proposal_config = rng.choice(candidates)
        proposals += 1
        fresh = proposal_config.label() not in seen
        proposal = evaluate(proposal_config)
        proposal_cost = cost(proposal)
        delta = proposal_cost - current_cost
        if delta <= 0 or (
            proposal_cost != math.inf
            and rng.random() < math.exp(-delta / temp)
        ):
            current_config = proposal_config
            current_cost = proposal_cost
            accepted += 1
        temp *= cooling
        if fresh and proposal.feasible:
            frontier = pareto_filter(
                frontier + [proposal], key=lambda p: p.cost2d()
            )
        if fresh:
            history.append(len(frontier))
        if job.save_state is not None:
            job.save_state({
                "rng": rng_state_to_json(rng.getstate()),
                "current": current_config.to_dict(),
                "current_cost": (
                    None if current_cost == math.inf else current_cost
                ),
                "reference": list(reference) if reference else None,
                "temp": temp,
                "steps": steps,
                "proposals": proposals,
                "accepted": accepted,
                "order": [p.config.to_dict() for p in seen.values()],
                "history": list(history),
            })

    return SearchOutcome(
        points=list(seen.values()),
        evaluations=len(seen),
        iterations=steps,
        frontier_history=history,
        moves_proposed=proposals,
        moves_accepted=accepted,
        moves_rejected=proposals - accepted,
    )


register_strategy(
    "exhaustive",
    exhaustive_search,
    "full sweep of the space, in space order (the paper's Sec. 2 flow)",
)
register_strategy(
    "random",
    random_search,
    "budgeted uniform sample of the space (seeded, deterministic)",
)
register_strategy(
    "iterative",
    iterative_search,
    "neighbourhood search expanding only non-dominated candidates",
)
register_strategy(
    "simulated_annealing",
    simulated_annealing_search,
    "seeded Metropolis walk over the neighbourhood model (budgeted)",
)
