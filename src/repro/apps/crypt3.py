"""Unix crypt(3): 25 iterations of salt-perturbed DES over a zero block.

Two formulations are provided and asserted equal in the test suite:

* the **reference** path through :mod:`repro.apps.des` (bit-level
  permutations, readable, obviously-aligned with FIPS 46);
* the **word-level** path (:func:`crypt_rounds_words`) that computes the
  same 25 x 16 rounds on 16-bit words with precomputed SP tables and
  subkey chunks — the exact algorithm the TTA kernel executes, expressed
  in Python so the kernel generator has a statement-for-statement golden
  model.

Salt convention: the 12-bit salt swaps bit ``i`` of the first 24 expanded
bits with bit ``i`` of the last 24 (LSB-first within each half), the
classic E-box perturbation.  In chunk terms only two chunk pairs are
affected: (c3, c7) under ``salt & 0x3F`` and (c2, c6) under
``(salt >> 6) & 0x3F``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.apps.des import (
    FP,
    P,
    des_rounds,
    key_schedule,
    permute,
    sbox_lookup,
    subkey_chunks,
)

#: crypt's base64 alphabet (not MIME's!).
CRYPT_B64 = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

#: Number of DES iterations in crypt(3).
CRYPT_ITERATIONS = 25


def password_to_key(password: str) -> int:
    """Low 7 bits of the first eight password chars, each shifted left."""
    key = 0
    padded = (password[:8] + "\0" * 8)[:8]
    for ch in padded:
        key = (key << 8) | ((ord(ch) & 0x7F) << 1)
    return key


def salt_to_mask(salt: str) -> int:
    """Two salt chars -> 12-bit E-box perturbation mask."""
    if len(salt) < 2:
        salt = (salt + "..")[:2]
    mask = 0
    for i, ch in enumerate(salt[:2]):
        index = CRYPT_B64.find(ch)
        if index < 0:
            index = 0
        mask |= index << (6 * i)
    return mask


def _encode64(value: int, bits: int) -> str:
    """MSB-first 6-bit groups over ``bits`` bits, zero-padded at the end."""
    out = []
    pad = (6 - bits % 6) % 6
    value <<= pad
    bits += pad
    for shift in range(bits - 6, -1, -6):
        out.append(CRYPT_B64[(value >> shift) & 0x3F])
    return "".join(out)


def unix_crypt(password: str, salt: str) -> str:
    """crypt(3): returns the classic 13-character hash."""
    subkeys = key_schedule(password_to_key(password))
    mask = salt_to_mask(salt)
    left = right = 0
    for _ in range(CRYPT_ITERATIONS):
        left, right = des_rounds(left, right, subkeys, salt_mask=mask)
        left, right = right, left   # preoutput feeds the next iteration
    preoutput = (left << 32) | right
    final = permute(preoutput, 64, FP)
    return (salt + "..")[:2] + _encode64(final, 64)


# ----------------------------------------------------------------------
# word-level formulation (the TTA kernel's golden model)
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def sp_tables() -> list[list[int]]:
    """``SP[j][v]`` = P(S_j(v)) as a 32-bit word with only box j's nibble."""
    tables = []
    for j in range(8):
        table = []
        for v in range(64):
            nibble = sbox_lookup(j, v)
            table.append(permute(nibble << (28 - 4 * j), 32, P))
        tables.append(table)
    return tables


def _chunks_from_words(r1: int, r0: int) -> list[int]:
    """The eight E-expansion chunks of R = (r1 << 16) | r0.

    Each line below is exactly what the IR kernel emits (16-bit ops only).
    """
    return [
        ((r0 & 1) << 5) | (r1 >> 11),
        (r1 >> 7) & 63,
        (r1 >> 3) & 63,
        ((r1 << 1) | (r0 >> 15)) & 63,
        (((r1 & 1) << 5) | (r0 >> 11)) & 63,
        (r0 >> 7) & 63,
        (r0 >> 3) & 63,
        (((r0 & 31) << 1) | (r1 >> 15)) & 63,
    ]


def crypt_rounds_words(
    password: str, salt: str, iterations: int = CRYPT_ITERATIONS
) -> tuple[int, int, int, int]:
    """25 x 16 crypt rounds on 16-bit words; returns (L1, L0, R1, R0).

    The returned state already includes the per-DES swap, i.e. the
    preoutput of the last iteration is ``(L << 32) | R``.
    """
    kchunks = subkey_chunks(key_schedule(password_to_key(password)))
    mask = salt_to_mask(salt)
    s0 = mask & 63          # perturbs pair (c3, c7)
    s1 = (mask >> 6) & 63   # perturbs pair (c2, c6)
    sp = sp_tables()

    l1 = l0 = r1 = r0 = 0
    for _ in range(iterations):
        for rnd in range(16):
            c = _chunks_from_words(r1, r0)
            t = (c[3] ^ c[7]) & s0
            c[3] ^= t
            c[7] ^= t
            u = (c[2] ^ c[6]) & s1
            c[2] ^= u
            c[6] ^= u
            f1 = f0 = 0
            for j in range(8):
                entry = sp[j][c[j] ^ kchunks[rnd][j]]
                f0 ^= entry & 0xFFFF
                f1 ^= entry >> 16
            nr0 = l0 ^ f0
            nr1 = l1 ^ f1
            l0, l1 = r0, r1
            r0, r1 = nr0, nr1
        # end of one DES: preoutput R||L becomes the next input block
        l0, r0 = r0, l0
        l1, r1 = r1, l1
    return l1, l0, r1, r0


def crypt_from_words(l1: int, l0: int, r1: int, r0: int, salt: str) -> str:
    """Format a word-level final state as the 13-char crypt output."""
    preoutput = (((l1 << 16) | l0) << 32) | ((r1 << 16) | r0)
    final = permute(preoutput, 64, FP)
    return (salt + "..")[:2] + _encode64(final, 64)
