"""Tests for ``repro.rtl``: full-core emission, lint, calibration."""

import pytest

from repro.apps.registry import build_workload
from repro.explore.evaluate import EvaluationContext
from repro.explore.space import (
    build_architecture_cached,
    dsp_space,
    small_space,
)
from repro.netlist import to_structural_verilog, word_ports
from repro.rtl import calibrate, elaborate_core, lint_core, lint_verilog
from repro.rtl.calibrate import TOLERANCE_BANDS, area_deltas
from repro.rtl.core import build_move_decoder
from repro.rtl.lint import _declared_ports
from repro.study.engine import workload_profile
from repro.tta.encoding import MoveEncoder


def _compiled(workload_name, config, width=16):
    workload = build_workload(workload_name)
    profile = workload_profile(workload_name, width)
    context = EvaluationContext(workload, profile, width)
    point = context.evaluate(config, keep_compile_result=True)
    assert point.feasible, f"{workload_name} on {config.label()}"
    return point, context, workload


# ----------------------------------------------------------------------
# emission + lint across the config sweep
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "config",
    small_space() + dsp_space(),
    ids=lambda c: c.label(),
)
def test_core_emission_is_lint_clean_across_spaces(config):
    arch = build_architecture_cached(config, 16)
    design = elaborate_core(arch)
    assert lint_core(design) == []
    # the top module is emitted last and instantiates everything else
    assert list(design.modules)[-1] == design.top_name


@pytest.mark.parametrize("width", [8, 32])
def test_core_emission_other_widths(width):
    arch = build_architecture_cached(small_space()[5], width)
    design = elaborate_core(arch)
    assert design.width == width
    assert lint_core(design) == []


def test_component_emitters_are_self_consistent():
    """Every structural submodule's Verilog port list matches its
    netlist's word-level ports bit for bit (the lint cross-check,
    exercised directly on each component of a representative core)."""
    arch = build_architecture_cached(dsp_space()[3], 16)
    design = elaborate_core(arch)
    for name, netlist in design.submodules.items():
        text = to_structural_verilog(netlist, module_name=name)
        assert lint_verilog(text) == []
        declared = _declared_ports(text)
        for port in word_ports(netlist):
            assert declared[port.name] == port.width, (name, port.name)


def test_program_embeds_as_instruction_rom():
    point, _, _ = _compiled("gcd", small_space()[5])
    arch = build_architecture_cached(point.config, 16)
    program = point.compile_result.program
    design = elaborate_core(arch, program=program)
    encoder = MoveEncoder(arch)
    assert design.num_instructions == len(program.instructions)
    assert design.instruction_bits == encoder.format.instruction_bits
    # the imem word carries a halt sideband on top of the encoded word
    assert design.imem_bits == (
        len(program.instructions) * (design.instruction_bits + 1)
    )
    assert lint_core(design) == []
    # every encoded instruction appears in the ROM case function
    top = design.modules[design.top_name]
    for word, instr in zip(
        encoder.encode_program(program), program.instructions
    ):
        image = word | (int(instr.halt) << design.instruction_bits)
        assert f"'h{image:x};" in top


def test_external_imem_core_without_program():
    arch = build_architecture_cached(small_space()[0], 16)
    design = elaborate_core(arch)
    assert design.num_instructions == 0
    assert design.imem_bits == 0
    # no embedded ROM: the top declares a writable instruction memory
    assert "imem" in design.modules[design.top_name]
    assert lint_core(design) == []


# ----------------------------------------------------------------------
# the move decoder is field-exact to the binary encoding
# ----------------------------------------------------------------------
def test_move_decoder_matches_encoder_on_compiled_program():
    point, _, _ = _compiled("gcd", small_space()[5])
    arch = build_architecture_cached(point.config, 16)
    encoder = MoveEncoder(arch)
    fmt = encoder.format
    decoder = build_move_decoder(fmt, arch.num_guard_regs)
    width_mask = (1 << arch.width) - 1
    slot_mask = (1 << fmt.slot_bits) - 1
    all_guards = (1 << arch.num_guard_regs) - 1

    program = point.compile_result.program
    checked_moves = 0
    for instr in program.instructions:
        word = encoder.encode_instruction(instr)
        imm_ext = word >> (fmt.num_buses * fmt.slot_bits)
        for bus, move in enumerate(instr.slots):
            slot = (word >> (bus * fmt.slot_bits)) & slot_mask
            out = decoder.evaluate_words(
                {"slot": slot, "guards": all_guards, "imm_ext": imm_ext}
            )
            if move is None:
                assert out["valid"] == 0
                assert out["fire"] == 0
                continue
            checked_moves += 1
            assert out["valid"] == 1
            assert out["dst_id"] == encoder.destination_id(
                move.dst.unit, move.dst.port
            )
            assert out["dst_index"] == (move.dst_reg or 0)
            if move.is_immediate():
                assert out["is_imm"] == 1
                assert out["imm_value"] == move.src.value & width_mask
            else:
                assert out["is_imm"] == 0
                assert out["src_id"] == encoder.source_id(
                    move.src.unit, move.src.port
                )
            if move.opcode is not None:
                assert out["opcode"] == encoder.opcode_id(move.opcode)
            else:
                assert out["opcode"] == 0
            # predicate: true guards fire unless inverted; zero guards
            # fire only when inverted; unguarded moves always fire
            zero = decoder.evaluate_words(
                {"slot": slot, "guards": 0, "imm_ext": imm_ext}
            )
            if move.guard is None:
                assert out["guard_ok"] == 1 and zero["guard_ok"] == 1
            else:
                inv = int(move.guard.invert)
                assert out["guard_ok"] == 1 ^ inv
                assert zero["guard_ok"] == 0 ^ inv
            assert out["fire"] == (out["valid"] & out["guard_ok"])
    assert checked_moves > 10


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
def test_calibration_cycles_delta_is_zero_and_areas_in_band():
    workload = build_workload("gcd")
    report = calibrate(workload, small_space()[5], width=16)
    assert report.cycles_delta == 0
    assert report.simulated_cycles == report.static_cycles
    assert report.ok
    for delta in report.deltas:
        if delta.modelled:
            lo, hi = TOLERANCE_BANDS[delta.category]
            assert lo <= delta.ratio <= hi, delta
        else:
            assert delta.category in ("decode", "fetch")
            assert delta.ratio is None and delta.within_tolerance is None


def test_calibration_on_dsp_space():
    workload = build_workload("fir")
    report = calibrate(workload, dsp_space()[3], width=16)
    assert report.cycles_delta == 0
    assert report.ok


def test_modelled_categories_partition_model_area_exactly():
    """The per-unit + interconnect model areas sum to arch.area() —
    the calibration covers everything the model prices, once."""
    for config in (small_space()[5], dsp_space()[3]):
        arch = build_architecture_cached(config, 16)
        design = elaborate_core(arch)
        deltas = area_deltas(arch, design)
        modelled = sum(d.model_area for d in deltas if d.modelled)
        assert modelled == pytest.approx(arch.area(), rel=1e-9)


def test_calibration_report_to_dict_round_trips_verdict():
    workload = build_workload("checksum")
    report = calibrate(workload, small_space()[5], width=16)
    data = report.to_dict()
    assert data["ok"] == report.ok
    assert data["cycles_delta"] == 0
    assert data["model_area"] == report.model_area
    assert {d["category"] for d in data["deltas"]} == {
        "unit", "rf", "interconnect", "decode", "fetch"
    }
    # unmodelled rows never carry a verdict
    for entry in data["deltas"]:
        if not entry["modelled"]:
            assert entry["within_tolerance"] is None


def test_calibrate_rejects_unmappable_workload():
    workload = build_workload("fir")      # needs a multiplier
    with pytest.raises(ValueError, match="does not map"):
        calibrate(workload, small_space()[0], width=16)
