"""Design space exploration (the MOVE-style flow of Sec. 2).

The configuration space, the shared-work evaluation pipeline, Pareto
filtering and the weighted-norm selection.  Sweeps are *driven* by the
study engine (:mod:`repro.study`): an exhaustive study enumerates TTA
templates (bus count, FU mix, register-file setup), compiles the
workload onto each, and keeps the Pareto-optimal points in the (area,
execution time) plane — Fig. 2.  The test-cost axis (Fig. 8) is added by
:mod:`repro.testcost`, the energy axis by :mod:`repro.energy`, and the
final architecture is picked with a weighted norm (Fig. 9).
"""

from repro.explore.space import (
    ArchConfig,
    RFConfig,
    build_architecture,
    build_architecture_cached,
    crypt_space,
    dsp_space,
    small_space,
    space_by_name,
    space_names,
)
from repro.explore.evaluate import (
    EvaluatedPoint,
    EvaluationContext,
    evaluate_config_worker,
    init_evaluation_worker,
    required_fu_opcodes,
)
from repro.explore.pareto import dominates, pareto_filter, pareto_filter_naive
from repro.explore.explorer import ExplorationResult
from repro.explore.iterative import default_seeds, neighbours
from repro.explore.selection import normalize_points, select_architecture

__all__ = [
    "ArchConfig",
    "EvaluatedPoint",
    "EvaluationContext",
    "ExplorationResult",
    "RFConfig",
    "build_architecture",
    "build_architecture_cached",
    "crypt_space",
    "default_seeds",
    "dominates",
    "dsp_space",
    "evaluate_config_worker",
    "init_evaluation_worker",
    "neighbours",
    "normalize_points",
    "pareto_filter",
    "pareto_filter_naive",
    "required_fu_opcodes",
    "select_architecture",
    "small_space",
    "space_by_name",
    "space_names",
]
