"""The full-scan baseline of Table 1.

Under full scan the ATPG sees one combinational blob per component: the
functional core plus all of its socket controllers (the scan view), with
every pipeline/FSM flip-flop on the chain.  Application cost follows the
classic shift-capture accounting of :mod:`repro.scan.cost`.

Register files cannot be full-scanned as multi-port memories; the
baseline therefore prices the *flip-flop implementation* (Sec. 4: "RF1
and RF2 could not have been tested with full scan, unless implemented as
a set of flip-flops"), whose chain carries every storage bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.atpg.engine import run_atpg
from repro.components.library import component_datasheet
from repro.components.socket import build_socket
from repro.components.spec import ComponentKind, ComponentSpec
from repro.scan.cost import full_scan_cycles
from repro.scan.scanview import scan_view
from repro.testcost.backannotate import (
    ATPG_BACKTRACK_LIMIT,
    ATPG_RANDOM_WORDS,
    ATPG_SEED,
)


@dataclass(frozen=True)
class FullScanAnnotation:
    """Full-scan figures for one component type."""

    spec_name: str
    num_patterns: int       # ATPG patterns on the scan view
    chain_length: int       # n_l under full scan
    cycles: int             # application cycles (Table 1 column 2)
    fault_coverage: float


@lru_cache(maxsize=None)
def full_scan_component_cycles(spec: ComponentSpec) -> FullScanAnnotation:
    """Full-scan cost of one component (cached per spec)."""
    datasheet = component_datasheet(spec)
    if spec.kind is ComponentKind.RF:
        core = datasheet.ff_netlist()
        # The flip-flop implementation puts every storage cell on the
        # chain, on top of the port/address registers and socket FFs.
        chain = (
            spec.num_regs * spec.width
            + spec.extra_ff_bits
            + spec.socket_ff_bits
        )
    else:
        core = datasheet.netlist()
        chain = spec.scan_chain_length
    if core is None:
        raise ValueError(f"{spec.name}: nothing to scan")
    sockets = [build_socket() for _ in spec.ports]
    view = scan_view(core, sockets)
    result = run_atpg(
        view,
        seed=ATPG_SEED,
        random_words=ATPG_RANDOM_WORDS,
        backtrack_limit=ATPG_BACKTRACK_LIMIT,
    )
    return FullScanAnnotation(
        spec_name=spec.name,
        num_patterns=result.num_patterns,
        chain_length=chain,
        cycles=full_scan_cycles(result.num_patterns, chain),
        fault_coverage=result.fault_coverage,
    )
