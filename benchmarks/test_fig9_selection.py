"""Fig. 9 — architecture selection with the equal-weight Euclid norm.

The paper's winner is a compact mid-curve machine: one ALU, one CMP, two
modest register files, LD/ST, PC and an immediate unit on a 16-bit
datapath.  We assert the selection (a) uses the equal-weight Euclidean
norm, (b) lands mid-curve (never on either extreme of the frontier), and
(c) is a compact FU mix like the paper's.
"""

from benchmarks.conftest import save_artifact
from repro.explore import build_architecture, select_architecture


def test_fig9_selection(benchmark, crypt_exploration):
    result = crypt_exploration
    candidates = result.pareto3d

    best = benchmark.pedantic(
        lambda: select_architecture(candidates), rounds=1, iterations=1
    )

    ordered = sorted(result.pareto2d, key=lambda p: p.area)
    assert best.point.label != ordered[0].label, "not the cheapest extreme"
    assert best.point.label != ordered[-1].label, "not the fastest extreme"

    config = best.point.config
    assert config.num_alus == 1, "paper's winner has a single ALU"
    assert config.num_cmps == 1
    assert config.total_registers <= 24, "compact register files"

    arch = build_architecture(config)
    lines = [
        "Fig. 9 reproduction: selected architecture "
        "(equal weights, Euclid norm)",
        f"winner: {best.point.label}",
        f"area={best.point.area:.0f}  cycles={best.point.cycles}  "
        f"f_t={best.point.test_cost}  norm={best.norm:.4f}",
        "",
        arch.describe(),
        "",
        "paper's Fig. 9: ALU + CMP + RF1(8) + RF2(12) + LD/ST + PC + "
        "Immediate, 16-bit datapath",
    ]
    save_artifact("fig9_selection", "\n".join(lines))
