"""Checkpoint/resume/cancel for the study engine.

A checkpoint is one small JSON file that makes a killed study cheap to
finish: the spec (and its hash, so a resume cannot silently run a
different study), every evaluated point so far (the same entry shape
the on-disk result cache uses), every recorded failure, and — for
strategies that walk rather than enumerate — the strategy's serialised
mid-search state including the RNG state, so an annealing run resumes
*mid-walk* instead of restarting its random sequence.

The :class:`CheckpointManager` always exists inside a running
:class:`~repro.study.engine.Study` (it is also how an interrupted run
assembles its partial result); it only touches disk when given a path,
writing atomically (temp file + rename) every ``every`` recorded
points and at run boundaries.

:class:`CancelToken` is the cooperative cancellation handle: the
evaluator checks it before costing anything fresh and raises
:class:`StudyInterrupted`, which the study converts into a
partial-but-valid result flagged ``interrupted=True``.  Tokens can
self-trip after N fresh evaluations (``after_points``) — the
deterministic mid-wave kill the resilience tests and CI smoke job use.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.util.digest import content_digest

CHECKPOINT_SCHEMA = 1

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CancelToken",
    "CheckpointManager",
    "StudyInterrupted",
    "rng_state_from_json",
    "rng_state_to_json",
    "spec_digest",
]


class StudyInterrupted(Exception):
    """Raised inside the engine when a cancel token trips.

    ``Study.run()`` catches it (and ``KeyboardInterrupt``) and returns
    the partial result; it only escapes to callers driving the
    evaluator directly.
    """


class CancelToken:
    """Cooperative cancellation: flip once, observed everywhere.

    ``after_points`` arms a deterministic self-trip: the token cancels
    itself once :meth:`tick` has been called that many times (the
    evaluator ticks per fresh evaluation), which interrupts a study at
    an exact, reproducible point mid-wave.
    """

    def __init__(self, after_points: int | None = None) -> None:
        if after_points is not None and after_points < 1:
            raise ValueError("after_points must be >= 1")
        self._event = threading.Event()
        self.after_points = after_points
        self.ticks = 0

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> None:
        self._event.set()

    def tick(self, n: int = 1) -> None:
        """Count ``n`` fresh evaluations toward ``after_points``."""
        self.ticks += n
        if self.after_points is not None and self.ticks >= self.after_points:
            self._event.set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise StudyInterrupted()


# ----------------------------------------------------------------------
# RNG state <-> JSON
# ----------------------------------------------------------------------
def rng_state_to_json(state) -> list:
    """``random.Random.getstate()`` as a JSON-safe nested list."""

    def safe(value):
        if isinstance(value, tuple):
            return [safe(v) for v in value]
        return value

    return safe(state)


def rng_state_from_json(data) -> tuple:
    """Invert :func:`rng_state_to_json` (lists back to tuples)."""

    def unsafe(value):
        if isinstance(value, list):
            return tuple(unsafe(v) for v in value)
        return value

    return unsafe(data)


def spec_digest(spec_dict: dict) -> str:
    """Stable content hash of a spec's dict form.

    The same digest a :class:`~repro.study.spec.StudySpec` reports as
    its ``spec_id`` — clients, checkpoints and the service layer's
    dedupe index all key jobs identically.
    """
    return content_digest(spec_dict)


class CheckpointManager:
    """Accumulate a study's durable state; write it atomically.

    Per run label the manager keeps the evaluated points (cache-entry
    dicts keyed by config label), the failures, the strategy's latest
    serialised state and a done flag.  ``path=None`` keeps everything
    in memory — the interrupted-run partial result still works, only
    resume-after-kill needs the file.
    """

    def __init__(
        self,
        spec_dict: dict,
        path: str | Path | None = None,
        every: int = 16,
    ) -> None:
        if every < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.spec_dict = spec_dict
        self.path = Path(path) if path is not None else None
        self.every = every
        self.runs: dict[str, dict] = {}
        self.interrupted = False
        self._dirty = 0

    # ------------------------------------------------------------------
    def _run(self, label: str) -> dict:
        entry = self.runs.get(label)
        if entry is None:
            entry = self.runs[label] = {
                "points": {},
                "failures": {},
                "strategy": None,
                "done": False,
            }
        return entry

    def record_point(self, label: str, config_label: str, entry: dict) -> None:
        self._run(label)["points"][config_label] = entry
        self._dirty += 1
        if self._dirty >= self.every:
            self.write()

    def record_failure(self, label: str, failure) -> None:
        self._run(label)["failures"][failure.label] = failure.to_dict()
        self._dirty += 1
        if self._dirty >= self.every:
            self.write()

    def set_strategy_state(self, label: str, state: dict) -> None:
        self._run(label)["strategy"] = state

    def strategy_state(self, label: str) -> dict | None:
        entry = self.runs.get(label)
        return entry["strategy"] if entry else None

    def points(self, label: str) -> dict[str, dict]:
        entry = self.runs.get(label)
        return entry["points"] if entry else {}

    def failures(self, label: str) -> dict[str, dict]:
        entry = self.runs.get(label)
        return entry["failures"] if entry else {}

    def mark_done(self, label: str) -> None:
        self._run(label)["done"] = True
        self.write(force=True)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "spec": self.spec_dict,
            "spec_hash": spec_digest(self.spec_dict),
            "interrupted": self.interrupted,
            "runs": self.runs,
        }

    def write(self, force: bool = False) -> None:
        """Persist the current state (atomic rename); no-op in-memory.

        ``force`` writes even when nothing changed since the last
        write — run boundaries and interrupt handling use it.
        """
        if self.path is None:
            return
        if self._dirty == 0 and not force:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.to_dict(), sort_keys=True))
        os.replace(tmp, self.path)
        self._dirty = 0

    @classmethod
    def load(cls, path: str | Path, every: int = 16) -> CheckpointManager:
        """Rehydrate a manager from a checkpoint file.

        Raises ``ValueError`` on schema mismatch or when the stored
        spec no longer matches its recorded hash (a corrupt or
        hand-edited file must not silently resume the wrong study).
        """
        path = Path(path)
        data = json.loads(path.read_text())
        if data.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"checkpoint {path} has schema {data.get('schema')!r}; "
                f"this reader handles {CHECKPOINT_SCHEMA}"
            )
        if spec_digest(data["spec"]) != data.get("spec_hash"):
            raise ValueError(
                f"checkpoint {path} is corrupt: stored spec does not "
                "match its recorded hash"
            )
        manager = cls(data["spec"], path=path, every=every)
        manager.runs = data.get("runs", {})
        manager.interrupted = bool(data.get("interrupted", False))
        return manager
