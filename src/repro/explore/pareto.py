"""Pareto filtering in any number of cost dimensions.

The paper bounds the solution space with local optima: "Pareto points
limit the design space such that for all (a, t) in the solution space,
a >= a_p or t >= t_p".  All axes are costs (smaller is better).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when cost vector ``a`` dominates ``b`` (<= everywhere, < once)."""
    if len(a) != len(b):
        raise ValueError("cost vectors must have equal dimension")
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_filter(
    items: Iterable[T],
    key: Callable[[T], Sequence[float]],
) -> list[T]:
    """Non-dominated subset of ``items`` under the cost vector ``key``.

    Deterministic: input order is preserved; among items with *identical*
    cost vectors the first is kept.
    """
    pool = list(items)
    costs = [tuple(key(item)) for item in pool]
    kept: list[T] = []
    seen: set[tuple] = set()
    for i, item in enumerate(pool):
        ci = costs[i]
        if ci in seen:
            continue
        dominated = False
        for j, cj in enumerate(costs):
            if j != i and dominates(cj, ci):
                dominated = True
                break
        if not dominated:
            kept.append(item)
            seen.add(ci)
    return kept
