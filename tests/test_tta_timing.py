"""The eq. 2-8 program validator: every class of violation is caught."""

from repro.tta import (
    Guard,
    Instruction,
    Literal,
    Move,
    PortRef,
    Program,
    assemble,
    validate_program,
)

from tests.conftest import make_arch


def _program(arch, *instructions):
    p = Program()
    for slots in instructions:
        padded = list(slots) + [None] * (arch.num_buses - len(slots))
        p.append(Instruction(slots=padded))
    return p


def test_clean_program_validates(arch2):
    src = """
        #5 -> alu0.a
        #7 -> alu0.b:add
        alu0.y -> rf0.w0[0]
        halt
    """
    assert validate_program(arch2, assemble(src, arch2)) == []


def test_eq3_early_result_read(arch2):
    p = _program(
        arch2,
        [Move(Literal(1), PortRef("alu0", "b"), opcode="add"),
         Move(PortRef("alu0", "y"), PortRef("rf0", "w0"), dst_reg=0)],
    )
    violations = validate_program(arch2, p)
    assert any("eq. 3" in str(v) for v in violations)


def test_read_before_any_trigger(arch2):
    p = _program(
        arch2,
        [Move(PortRef("alu0", "y"), PortRef("rf0", "w0"), dst_reg=0)],
    )
    assert any("before any result" in str(v) for v in validate_program(arch2, p))


def test_unread_result_overwritten_strict(arch2):
    p = _program(
        arch2,
        [Move(Literal(1), PortRef("alu0", "b"), opcode="add")],
        [Move(Literal(2), PortRef("alu0", "b"), opcode="add")],
        [Move(PortRef("alu0", "y"), PortRef("rf0", "w0"), dst_reg=0)],
    )
    strict = validate_program(arch2, p, strict=True)
    assert any("overwritten unread" in str(v) for v in strict)
    relaxed = validate_program(arch2, p, strict=False)
    assert not any("overwritten unread" in str(v) for v in relaxed)


def test_unknown_unit_and_port(arch2):
    p = _program(arch2, [Move(Literal(1), PortRef("ghost", "x"))])
    assert any("unknown unit" in str(v) for v in validate_program(arch2, p))
    p = _program(arch2, [Move(Literal(1), PortRef("alu0", "zz"))])
    assert any("unknown port" in str(v) for v in validate_program(arch2, p))


def test_direction_checks(arch2):
    # writing an output port
    p = _program(arch2, [Move(Literal(1), PortRef("alu0", "y"))])
    assert any("not an input port" in str(v) for v in validate_program(arch2, p))
    # reading an input port
    p = _program(
        arch2, [Move(PortRef("alu0", "a"), PortRef("rf0", "w0"), dst_reg=0)]
    )
    assert any("not an output port" in str(v) for v in validate_program(arch2, p))


def test_bad_opcode(arch2):
    p = _program(
        arch2, [Move(Literal(1), PortRef("alu0", "b"), opcode="frobnicate")]
    )
    assert any("not supported" in str(v) for v in validate_program(arch2, p))


def test_rf_index_range(arch2):
    p = _program(
        arch2,
        [Move(Literal(1), PortRef("rf0", "w0"), dst_reg=99)],
    )
    assert any("bad register index" in str(v) for v in validate_program(arch2, p))


def test_guard_range(arch2):
    p = _program(
        arch2,
        [Move(Literal(1), PortRef("rf0", "w0"), dst_reg=0, guard=Guard(17))],
    )
    assert any("guard g17" in str(v) for v in validate_program(arch2, p))


def test_double_write_same_port(arch2):
    p = _program(
        arch2,
        [Move(Literal(1), PortRef("alu0", "a")),
         Move(Literal(2), PortRef("alu0", "a"))],
    )
    assert any("moves write" in str(v) for v in validate_program(arch2, p))


def test_output_socket_single_bus(arch3):
    # one output port cannot drive two buses in one cycle
    p = _program(
        arch3,
        [Move(Literal(1), PortRef("alu0", "b"), opcode="add")],
        [Move(PortRef("alu0", "y"), PortRef("rf0", "w0"), dst_reg=0),
         Move(PortRef("alu0", "y"), PortRef("rf1", "w0"), dst_reg=0)],
    )
    assert any("drives" in str(v) for v in validate_program(arch3, p))


def test_rf_port_capacity(arch2):
    # rf0 has one read port: two same-cycle reads violate
    p = _program(
        arch2,
        [Move(Literal(1), PortRef("rf0", "w0"), dst_reg=0)],
        [Move(PortRef("rf0", "r0"), PortRef("alu0", "a"), src_reg=0),
         Move(PortRef("rf0", "r0"), PortRef("alu0", "b"), opcode="add", src_reg=0)],
    )
    assert any("used 2x" in str(v) for v in validate_program(arch2, p))


def test_long_immediate_needs_imm_unit():
    arch = make_arch(2)
    # remove the immediate unit by building a custom arch
    from repro.components.library import alu_spec, pc_spec, rf_spec
    from repro.tta import Architecture, UnitInstance

    bare = Architecture(
        "bare", 16, 2,
        [UnitInstance("alu0", alu_spec(16)),
         UnitInstance("rf0", rf_spec(8, 16)),
         UnitInstance("pc", pc_spec(16))],
    )
    p = _program(bare, [Move(Literal(5000), PortRef("rf0", "w0"), dst_reg=0)])
    assert any("immediate unit" in str(v) for v in validate_program(bare, p))
    p_ok = _program(arch, [Move(Literal(5000), PortRef("rf0", "w0"), dst_reg=0)])
    assert not any(
        "immediate unit" in str(v) for v in validate_program(arch, p_ok)
    )


def test_one_bus_long_immediate_convention():
    arch1 = make_arch(1)
    # long immediate with empty next instruction: allowed
    p = _program(
        arch1,
        [Move(Literal(5000), PortRef("rf0", "w0"), dst_reg=0)],
        [None],
    )
    assert validate_program(arch1, p) == []
    # long immediate followed by a busy instruction: rejected
    p = _program(
        arch1,
        [Move(Literal(5000), PortRef("rf0", "w0"), dst_reg=0)],
        [Move(Literal(1), PortRef("rf0", "w0"), dst_reg=1)],
    )
    assert any("long immediates" in str(v) for v in validate_program(arch1, p))


def test_jump_target_range(arch2):
    p = _program(
        arch2,
        [Move(Literal(999), PortRef("pc", "target"), opcode="jump")],
    )
    assert any("outside program" in str(v) for v in validate_program(arch2, p))
