"""The study service: a long-running, multi-tenant job server.

The batch surfaces (``repro study``, ``repro campaign``) run one spec
and exit.  This package turns the same engine into a *service*: a
single asyncio process that accepts :class:`~repro.study.spec.
StudySpec` submissions over a line-delimited JSON protocol
(:mod:`~repro.service.protocol`), queues them with priorities and
per-tenant fairness (:mod:`~repro.service.queue`), runs them against
one shared worker budget and one shared result cache — deduplicating
identical in-flight evaluations across concurrent studies
(:mod:`~repro.service.dedupe`) — and streams partial Pareto fronts
back to subscribed clients as points complete.  Queue state persists
through the same checkpoint machinery studies use, so a killed server
resumes its queue (:mod:`~repro.service.server`).

:class:`~repro.service.client.ServiceClient` is the blocking-socket
counterpart the CLI (``repro serve|submit|jobs|results|cancel``) and
the tests drive.

Operational telemetry is live: the server keeps a
:class:`~repro.telemetry.live.LiveRegistry` of queue/worker gauges,
job lifecycle counters and latency histograms, answers the ``metrics``
protocol op with per-tenant and global aggregates, and (via the CLI's
``--metrics-addr``) serves Prometheus text over HTTP.  ``repro top``
(:mod:`~repro.service.top`) renders the same numbers as a terminal
dashboard.
"""

from repro.service.client import ServiceClient, wait_for_server
from repro.service.dedupe import DedupeCache, InflightIndex
from repro.service.protocol import (
    METRICS_VERSION,
    PROTOCOL_VERSION,
    parse_address,
)
from repro.service.queue import Job, JobQueue, JobState
from repro.service.server import StudyServer
from repro.service.top import render_dashboard, run_top

__all__ = [
    "DedupeCache",
    "InflightIndex",
    "Job",
    "JobQueue",
    "JobState",
    "METRICS_VERSION",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "StudyServer",
    "parse_address",
    "render_dashboard",
    "run_top",
    "wait_for_server",
]
