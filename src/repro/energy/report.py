"""Component-level energy breakdown (the energy analogue of Table 1).

``energy_report`` runs one program on one architecture with activity
tracing and folds the trace through an :class:`~repro.energy.model.
EnergyModel`: one :class:`EnergyEntry` per bus, per functional unit,
per register file, plus the instruction-fetch path and architecture
leakage.  The breakdown's entries *are* the total — ``total`` is their
sum, pinned by tests — so the table answers "where does the energy go"
the same way the test-cost tables answer "where does the test time go".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.spec import ComponentKind
from repro.energy.model import EnergyModel, TechnologyParameters
from repro.tta.activity import ActivityTrace
from repro.tta.arch import Architecture
from repro.tta.isa import Program
from repro.tta.simulator import TTASimulator


@dataclass(frozen=True)
class EnergyEntry:
    """One component's share of a run's energy."""

    name: str          # "bus0", "alu0", "rf1", "fetch", "leakage"
    category: str      # "bus" | "fu" | "rf" | "fetch" | "leakage"
    events: int        # transports / activations / accesses / words / cycles
    toggles: int       # bit flips charged to this component
    energy: float


@dataclass
class EnergyBreakdown:
    """Everything one simulated run dissipated, by component."""

    arch_name: str
    program_name: str
    tech: str
    cycles: int
    entries: list[EnergyEntry] = field(default_factory=list)

    @property
    def total(self) -> float:
        """Total energy — by construction the exact sum of the entries."""
        return sum(e.energy for e in self.entries)

    @property
    def dynamic(self) -> float:
        return sum(e.energy for e in self.entries if e.category != "leakage")

    def category_total(self, category: str) -> float:
        return sum(e.energy for e in self.entries if e.category == category)

    def entry(self, name: str) -> EnergyEntry:
        for e in self.entries:
            if e.name == name:
                return e
        raise KeyError(f"no component {name!r} in breakdown")

    @property
    def edp(self) -> float:
        """Energy-delay product of the run."""
        return self.total * self.cycles


def breakdown_from_trace(
    trace: ActivityTrace,
    arch: Architecture,
    tech: TechnologyParameters,
    program_name: str = "program",
) -> EnergyBreakdown:
    """Fold an activity trace through the energy model."""
    model = EnergyModel(arch, tech)
    out = EnergyBreakdown(
        arch_name=arch.name,
        program_name=program_name,
        tech=tech.name,
        cycles=trace.cycles,
    )

    for bus in range(arch.num_buses):
        toggles = trace.bus_toggles.get(bus, 0)
        transports = trace.bus_transports.get(bus, 0)
        out.entries.append(EnergyEntry(
            name=f"bus{bus}",
            category="bus",
            events=transports,
            toggles=toggles,
            energy=toggles * model.bus_toggle(bus),
        ))

    for unit in arch.units.values():
        name = unit.name
        kind = unit.spec.kind
        sockets = sum(
            n for (u, _p), n in trace.socket_transports.items() if u == name
        )
        if kind is ComponentKind.RF:
            reads = trace.rf_reads.get(name, 0)
            writes = trace.rf_writes.get(name, 0)
            read_t = trace.rf_read_toggles.get(name, 0)
            write_t = trace.rf_write_toggles.get(name, 0)
            energy = (
                read_t * model.rf_read_toggle(name)
                + write_t * model.rf_write_toggle(name)
                + (reads + writes) * model.rf_access(name)
                + sockets * model.socket_transport()
            )
            out.entries.append(EnergyEntry(
                name=name,
                category="rf",
                events=reads + writes,
                toggles=read_t + write_t,
                energy=energy,
            ))
            continue
        # FU / LSU / PC / IMM: port toggles + activations + sockets.
        toggles = 0
        energy = sockets * model.socket_transport()
        for (u, port), count in trace.port_toggles.items():
            if u != name:
                continue
            toggles += count
            energy += count * model.port_toggle(name, port)
        activations = trace.fu_activations.get(name, 0)
        if activations:
            energy += activations * model.activation(name)
        out.entries.append(EnergyEntry(
            name=name,
            category="fu",
            events=activations or sockets,
            toggles=toggles,
            energy=energy,
        ))

    out.entries.append(EnergyEntry(
        name="fetch",
        category="fetch",
        events=trace.fetch_words,
        toggles=trace.fetch_toggles,
        energy=trace.fetch_toggles * model.fetch_toggle(),
    ))
    out.entries.append(EnergyEntry(
        name="guards",
        category="fu",
        events=trace.guard_toggles,
        toggles=trace.guard_toggles,
        energy=trace.guard_toggles * model.guard_toggle(),
    ))
    out.entries.append(EnergyEntry(
        name="leakage",
        category="leakage",
        events=trace.cycles,
        toggles=0,
        energy=trace.cycles * model.leakage_per_cycle,
    ))
    return out


def energy_report(
    arch: Architecture,
    program: Program,
    tech: TechnologyParameters | None = None,
    max_cycles: int = 5_000_000,
    metrics=None,
) -> EnergyBreakdown:
    """Simulate ``program`` with activity tracing and break down energy.

    Raises ``ValueError`` when the program does not halt within the
    cycle budget — an unfinished run would silently under-report.  (A
    deliberately narrow type: the CLI reports it as a clean one-line
    error without masking genuine internal failures.)

    ``metrics`` (a :class:`repro.telemetry.MetricsCollector`) times the
    activity-traced simulation as the ``simulate`` phase and the model
    fold as ``energy_model``; ``None`` skips all bookkeeping.
    """
    from repro.energy.model import technology_by_name

    if tech is None:
        tech = technology_by_name("default")
    sim = TTASimulator(arch, program, activity=True)
    if metrics is None:
        result = sim.run(max_cycles=max_cycles)
    else:
        with metrics.phase("simulate"):
            result = sim.run(max_cycles=max_cycles)
    if not result.halted:
        raise ValueError(
            f"{program.name} on {arch.name}: no halt within "
            f"{max_cycles} cycles; cannot attribute energy"
        )
    if metrics is None:
        return breakdown_from_trace(
            sim.activity, arch, tech, program_name=program.name
        )
    with metrics.phase("energy_model"):
        return breakdown_from_trace(
            sim.activity, arch, tech, program_name=program.name
        )


def format_energy_report(breakdown: EnergyBreakdown) -> str:
    """Human-readable breakdown table (stable column order)."""
    total = breakdown.total or 1.0
    lines = [
        f"energy report: {breakdown.program_name} on "
        f"{breakdown.arch_name} (tech={breakdown.tech})",
        f"cycles={breakdown.cycles}  energy={breakdown.total:.1f}  "
        f"edp={breakdown.edp:.3e}",
        f"{'component':<12} {'class':<8} {'events':>8} {'toggles':>9} "
        f"{'energy':>12} {'share':>7}",
    ]
    for e in sorted(breakdown.entries, key=lambda e: -e.energy):
        lines.append(
            f"{e.name:<12} {e.category:<8} {e.events:>8} {e.toggles:>9} "
            f"{e.energy:>12.1f} {e.energy / total:>6.1%}"
        )
    toggles = sum(e.toggles for e in breakdown.entries)
    lines.append(
        f"{'total':<12} {'':<8} {'':>8} {toggles:>9} "
        f"{breakdown.total:>12.1f} {1:>6.0%}"
    )
    return "\n".join(lines)
