"""Structured tracing: span/event records onto a JSONL sink.

A :class:`Tracer` is a thin, zero-dependency writer of the records
documented in :mod:`repro.telemetry.schema`.  Timestamps come from
``time.perf_counter`` relative to the moment the tracer opened, so the
stream is monotonic and durations subtract exactly; the wall-clock
start lives in the header record for humans.

Writes are **buffered**: records accumulate in memory and hit the file
every ``flush_every`` records or ``flush_seconds`` seconds, whichever
comes first (flush-per-record was a measurable drag on large traced
sweeps).  :meth:`~Tracer.flush` forces the buffer out at any time, and
:meth:`~Tracer.close` always flushes, so the ``finally``-flush
guarantees hold: a run that dies mid-study still leaves a valid trace
of everything recorded before the failure.  A lock serialises writers,
so the study server can hand :meth:`~Tracer.bind`-stamped views of one
tracer to jobs running on different threads.

Tracing is strictly opt-in: nothing in the study stack constructs a
tracer on its own, and every instrumented call site accepts
``tracer=None`` (the default) and skips all work in that case.  Only
the parent process traces — pool workers report their share through
metric snapshots merged on wave completion, never through the sink —
so one file descriptor owns the file and records never interleave.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import IO, Iterator

from repro.telemetry.schema import SCHEMA_VERSION


class Tracer:
    """Emit schema-versioned span/event records as JSON lines.

    ``sink`` is a path (opened for writing, parents created) or any
    object with ``write``/``flush``.  ``study`` stamps every record
    with the study id; the engine fills it in lazily when the CLI did
    not.  ``flush_every``/``flush_seconds`` bound how much a crash can
    lose (``flush_every=1`` restores the old flush-per-record
    behaviour).
    """

    def __init__(
        self,
        sink: str | Path | IO[str],
        study: str | None = None,
        flush_every: int = 64,
        flush_seconds: float = 1.0,
    ) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        if isinstance(sink, (str, Path)):
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file: IO[str] = path.open("w")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self.study = study
        self.flush_every = flush_every
        self.flush_seconds = flush_seconds
        self._t0 = perf_counter()
        self._lock = threading.Lock()
        self._buffer: list[str] = []
        self._last_flush = perf_counter()
        self._closed = False
        self._write({
            "v": SCHEMA_VERSION,
            "kind": "meta",
            "ts": 0.0,
            "name": "trace",
            "data": {
                "schema": SCHEMA_VERSION,
                "started": time.time(),
                "pid": os.getpid(),
            },
        })

    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._closed:
                return
            self._buffer.append(line)
            now = perf_counter()
            if (
                len(self._buffer) >= self.flush_every
                or now - self._last_flush >= self.flush_seconds
            ):
                self._flush_locked(now)

    def _flush_locked(self, now: float | None = None) -> None:
        if self._buffer:
            self._file.write("".join(self._buffer))
            self._buffer.clear()
        self._file.flush()
        self._last_flush = perf_counter() if now is None else now

    def flush(self) -> None:
        """Force buffered records to the sink now."""
        with self._lock:
            if not self._closed:
                self._flush_locked()

    def _record(
        self,
        kind: str,
        name: str,
        ts: float,
        run: str | None,
        wave: int | None,
        config: str | None,
        data: dict | None,
        dur: float | None = None,
        job: str | None = None,
        tenant: str | None = None,
        study: str | None = None,
    ) -> None:
        record: dict = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "ts": round(ts, 6),
            "name": name,
        }
        if dur is not None:
            record["dur"] = round(dur, 6)
        study = study if study is not None else self.study
        if study is not None:
            record["study"] = study
        if run is not None:
            record["run"] = run
        if wave is not None:
            record["wave"] = wave
        if config is not None:
            record["config"] = config
        if job is not None:
            record["job"] = job
        if tenant is not None:
            record["tenant"] = tenant
        if data:
            record["data"] = data
        self._write(record)

    # ------------------------------------------------------------------
    def event(
        self,
        name: str,
        run: str | None = None,
        wave: int | None = None,
        config: str | None = None,
        job: str | None = None,
        tenant: str | None = None,
        study: str | None = None,
        **data,
    ) -> None:
        """Emit one point-in-time event record."""
        self._record(
            "event", name, perf_counter() - self._t0, run, wave, config,
            data or None, job=job, tenant=tenant, study=study,
        )

    @contextmanager
    def span(
        self,
        name: str,
        run: str | None = None,
        wave: int | None = None,
        config: str | None = None,
        job: str | None = None,
        tenant: str | None = None,
        study: str | None = None,
        **data,
    ) -> Iterator[None]:
        """Time a block; emits one complete span record on exit.

        The record is written even when the block raises, so traces of
        failed runs still account for the time spent.
        """
        start = perf_counter()
        try:
            yield
        finally:
            end = perf_counter()
            self._record(
                "span", name, start - self._t0, run, wave, config,
                data or None, dur=end - start, job=job, tenant=tenant,
                study=study,
            )

    def metric_snapshot(
        self,
        name: str,
        data: dict,
        job: str | None = None,
        tenant: str | None = None,
        study: str | None = None,
    ) -> None:
        """Emit one ``metric_snapshot`` record (a live-registry dump)."""
        self._record(
            "metric_snapshot", name, perf_counter() - self._t0,
            None, None, None, data, job=job, tenant=tenant, study=study,
        )

    def bind(
        self, job: str | None = None, tenant: str | None = None,
    ) -> "BoundTracer":
        """A view of this tracer that stamps ``job``/``tenant`` on
        every record — how the study server correlates study-layer
        spans with the service job that ran them."""
        return BoundTracer(self, job=job, tenant=tenant)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            if self._owns_file:
                self._file.close()
            self._closed = True

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class BoundTracer:
    """A :class:`Tracer` view with ``job``/``tenant`` pre-stamped.

    Shares the underlying sink, clock and buffer; exposes the same
    recording surface (``event``/``span``/``metric_snapshot``/
    ``bind``) plus a **view-local** ``study`` attribute the engine
    fills in lazily — concurrent jobs bound to one tracer each keep
    their own study stamp without racing on the shared base.  Closing
    is the owner's business — ``close`` here only flushes.
    """

    def __init__(
        self, base: Tracer, job: str | None, tenant: str | None,
    ) -> None:
        self._base = base
        self.job = job
        self.tenant = tenant
        self.study: str | None = base.study

    def _stamp(self, kwargs: dict) -> dict:
        kwargs.setdefault("job", self.job)
        kwargs.setdefault("tenant", self.tenant)
        if self.study is not None:
            kwargs.setdefault("study", self.study)
        return kwargs

    def event(self, name: str, **kwargs) -> None:
        self._base.event(name, **self._stamp(kwargs))

    def span(self, name: str, **kwargs):
        return self._base.span(name, **self._stamp(kwargs))

    def metric_snapshot(self, name: str, data: dict, **kwargs) -> None:
        self._base.metric_snapshot(name, data, **self._stamp(kwargs))

    def bind(
        self, job: str | None = None, tenant: str | None = None,
    ) -> "BoundTracer":
        return BoundTracer(
            self._base,
            job=self.job if job is None else job,
            tenant=self.tenant if tenant is None else tenant,
        )

    def flush(self) -> None:
        self._base.flush()

    def close(self) -> None:
        self._base.flush()
