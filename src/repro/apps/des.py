"""DES, the substrate of the paper's "Crypt" workload [7].

Textbook implementation with the standard published tables, validated in
the test suite against the classic test vector

    key 0x133457799BBCDFF1, plaintext 0x0123456789ABCDEF
        -> ciphertext 0x85E813540F0AB405

Bit conventions: tables are 1-based and MSB-first exactly as printed in
FIPS 46; :func:`permute` therefore treats bit 1 as the most significant
bit of the input word.

Besides whole-block encryption this module exposes the pieces crypt(3)
needs: the key schedule, the subkeys re-expressed as eight 6-bit chunks
(:func:`subkey_chunks`), and the round core operating on (L, R) halves
without IP/FP (iterated encryptions cancel IP against FP).
"""

from __future__ import annotations

# --- permutation tables (FIPS 46, 1-based, MSB-first) -------------------
IP = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
]
FP = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
]
E = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
]
P = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
]
PC1 = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
]
PC2 = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
]
SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

SBOX = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
]


def permute(value: int, in_width: int, table: list[int]) -> int:
    """Apply a 1-based MSB-first permutation table."""
    out = 0
    for position in table:
        out = (out << 1) | ((value >> (in_width - position)) & 1)
    return out


def _rotl28(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (28 - amount))) & 0xFFFFFFF


def key_schedule(key64: int) -> list[int]:
    """The 16 48-bit round subkeys of DES."""
    cd = permute(key64, 64, PC1)
    c, d = cd >> 28, cd & 0xFFFFFFF
    subkeys = []
    for shift in SHIFTS:
        c, d = _rotl28(c, shift), _rotl28(d, shift)
        subkeys.append(permute((c << 28) | d, 56, PC2))
    return subkeys


def subkey_chunks(subkeys: list[int]) -> list[list[int]]:
    """Subkeys split into eight 6-bit chunks each, MSB-first.

    Chunk ``j`` of round ``r`` XORs against E-expansion chunk ``j`` — the
    representation the word-level crypt kernel consumes.
    """
    return [
        [(k >> (42 - 6 * j)) & 0x3F for j in range(8)] for k in subkeys
    ]


def sbox_lookup(box: int, chunk6: int) -> int:
    """S-box addressing: outer bits choose the row, inner four the column."""
    row = ((chunk6 >> 4) & 2) | (chunk6 & 1)
    col = (chunk6 >> 1) & 0xF
    return SBOX[box][row * 16 + col]


def f_function(r32: int, subkey48: int, salt_mask: int = 0) -> int:
    """The DES round function, with crypt(3)'s salt perturbation.

    The salt swaps bit ``i`` of the first 24 expanded bits with bit ``i``
    of the last 24 (``i`` counted LSB-first within each 24-bit half) for
    every set bit of the 12-bit ``salt_mask`` — the classic E-box
    perturbation of Unix crypt.
    """
    expanded = permute(r32, 32, E)
    if salt_mask:
        left, right = expanded >> 24, expanded & 0xFFFFFF
        swap = (left ^ right) & salt_mask
        left ^= swap
        right ^= swap
        expanded = (left << 24) | right
    expanded ^= subkey48
    out = 0
    for j in range(8):
        chunk = (expanded >> (42 - 6 * j)) & 0x3F
        out = (out << 4) | sbox_lookup(j, chunk)
    return permute(out, 32, P)


def des_rounds(
    l32: int, r32: int, subkeys: list[int], salt_mask: int = 0,
    decrypt: bool = False,
) -> tuple[int, int]:
    """Sixteen Feistel rounds on (L, R); no IP/FP, no final swap."""
    order = reversed(subkeys) if decrypt else subkeys
    for subkey in order:
        l32, r32 = r32, l32 ^ f_function(r32, subkey, salt_mask)
    return l32, r32


def initial_permutation(block64: int) -> tuple[int, int]:
    ip = permute(block64, 64, IP)
    return ip >> 32, ip & 0xFFFFFFFF


def final_permutation(l32: int, r32: int) -> int:
    """Combine preoutput R||L and apply FP."""
    return permute((r32 << 32) | l32, 64, FP)


def des_encrypt_block(key64: int, block64: int, salt_mask: int = 0) -> int:
    left, right = initial_permutation(block64)
    left, right = des_rounds(left, right, key_schedule(key64), salt_mask)
    return final_permutation(left, right)


def des_decrypt_block(key64: int, block64: int, salt_mask: int = 0) -> int:
    left, right = initial_permutation(block64)
    left, right = des_rounds(
        left, right, key_schedule(key64), salt_mask, decrypt=True
    )
    return final_permutation(left, right)
