"""The resilience layer: fault policies, checkpoints, cache hardening.

Everything here leans on the deterministic injectors in
:mod:`repro.resilience.faults` — a fault is planted at an exact,
reproducible place (a configuration label or the N-th evaluation call)
and the recovery machinery is asserted around it.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.campaign import ResultCache
from repro.campaign.cache import cache_key
from repro.explore import EvaluatedPoint, small_space
from repro.resilience import (
    CancelToken,
    CheckpointManager,
    FailedPoint,
    FaultPolicy,
    StudyInterrupted,
    faults,
    traceback_digest,
)
from repro.resilience.faults import FaultPlan, InjectedFault, plan_from_env
from repro.study import StudySpec, run_study
from repro.study.engine import Study

SMALL = small_space()
POISON = SMALL[2].label()

SKIP = FaultPolicy(mode="skip")
RETRY = FaultPolicy(mode="retry", max_retries=2, backoff=0.0)


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    faults.clear()
    yield
    faults.clear()


def small_spec(name="resilience", strategy="exhaustive", params=(), **kw):
    kw.setdefault("workloads", ("gcd",))
    kw.setdefault("space", "small")
    return StudySpec(
        name=name,
        strategy=strategy,
        strategy_params=dict(params),
        **kw,
    )


def front_labels(result) -> set[str]:
    return {p.config.label() for p in result.single.pareto}


def point_labels(result) -> list[str]:
    return [p.config.label() for p in result.single.result.points]


# ----------------------------------------------------------------------
# policy / failure-record units
# ----------------------------------------------------------------------
def test_policy_attempt_budget():
    assert FaultPolicy().attempts == 1
    assert FaultPolicy(mode="skip").attempts == 1
    assert FaultPolicy(mode="retry", max_retries=3).attempts == 4


def test_policy_backoff_schedule():
    policy = FaultPolicy(
        mode="retry", backoff=0.1, backoff_factor=2.0, max_retries=3
    )
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)


def test_policy_round_trip():
    policy = FaultPolicy(mode="retry", max_retries=5, timeout=2.5)
    assert FaultPolicy.from_dict(policy.to_dict()) == policy


def test_policy_rejects_unknown_mode():
    with pytest.raises(ValueError, match="fault-policy mode"):
        FaultPolicy(mode="explode")


def test_failed_point_from_exception():
    try:
        raise RuntimeError("boom")
    except RuntimeError as exc:
        failed = FailedPoint.from_exception(SMALL[0], exc, attempts=2)
        digest = traceback_digest(exc)
    assert failed.error_type == "RuntimeError"
    assert failed.message == "boom"
    assert failed.digest == digest
    assert failed.attempts == 2
    assert FailedPoint.from_dict(failed.to_dict()) == failed


# ----------------------------------------------------------------------
# injector plumbing
# ----------------------------------------------------------------------
def test_plan_from_env_variants():
    plan = plan_from_env("raise@#3")
    assert (plan.kind, plan.nth, plan.times) == ("raise", 3, -1)
    plan = plan_from_env(f"raise@{POISON}:2")
    assert (plan.kind, plan.label, plan.times) == ("raise", POISON, 2)
    plan = plan_from_env("sleep@#2:0.5:1")
    assert (plan.kind, plan.nth, plan.seconds, plan.times) == (
        "sleep", 2, 0.5, 1,
    )
    plan = plan_from_env("kill@b1-alu1-8r1R1W")
    assert (plan.kind, plan.label) == ("kill", "b1-alu1-8r1R1W")


def test_plan_from_env_rejects_garbage():
    with pytest.raises(ValueError, match="spec"):
        plan_from_env("raise")
    with pytest.raises(ValueError, match="kind"):
        plan_from_env("explode@#1")
    with pytest.raises(ValueError, match="label/nth"):
        FaultPlan(kind="raise")


def test_times_caps_firings():
    plan = faults.install(FaultPlan(kind="raise", nth=1, times=1))
    with pytest.raises(InjectedFault):
        faults.on_evaluate(SMALL[0])
    assert plan.fired == 1
    faults.install(FaultPlan(kind="raise", label=POISON, times=1))
    config = next(c for c in SMALL if c.label() == POISON)
    with pytest.raises(InjectedFault):
        faults.on_evaluate(config)
    faults.on_evaluate(config)          # cap reached: no second firing


# ----------------------------------------------------------------------
# fault policies on the serial path
# ----------------------------------------------------------------------
def test_fail_fast_propagates_by_default():
    faults.install(FaultPlan(kind="raise", label=POISON))
    with pytest.raises(InjectedFault):
        run_study(small_spec())


def test_skip_records_failure_and_keeps_the_rest():
    faults.install(FaultPlan(kind="raise", label=POISON))
    result = run_study(small_spec(), policy=SKIP)

    assert [f.label for f in result.failures] == [POISON]
    failure = result.failures[0]
    assert failure.error_type == "InjectedFault"
    assert failure.attempts == 1
    assert len(failure.digest) == 12
    # The full front minus only the poisoned point: identical to a
    # clean study over the space with that configuration removed.
    faults.clear()
    reference = run_study(small_spec(
        name="minus-poison",
        space=tuple(c for c in SMALL if c.label() != POISON),
    ))
    assert front_labels(result) == front_labels(reference)
    # The failed point stays in the stream as an infeasible placeholder.
    placeholder = [
        p for p in result.single.result.points
        if p.config.label() == POISON
    ]
    assert len(placeholder) == 1
    assert placeholder[0].failed and not placeholder[0].feasible


def test_retry_recovers_transient_fault():
    clean = run_study(small_spec())
    faults.install(FaultPlan(kind="raise", nth=3, times=1))
    result = run_study(small_spec(), policy=RETRY)
    assert result.failures == []
    assert front_labels(result) == front_labels(clean)
    assert point_labels(result) == point_labels(clean)


def test_retry_exhausts_into_failure():
    faults.install(FaultPlan(kind="raise", label=POISON))   # persistent
    result = run_study(small_spec(), policy=RETRY)
    assert [f.label for f in result.failures] == [POISON]
    assert result.failures[0].attempts == RETRY.attempts


# ----------------------------------------------------------------------
# fault policies on the pool path
# ----------------------------------------------------------------------
def test_pool_timeout_marks_point_failed():
    faults.install(FaultPlan(kind="sleep", label=POISON, seconds=1.5))
    result = run_study(
        small_spec(workers=2),
        policy=FaultPolicy(mode="skip", timeout=0.3),
    )
    assert [f.label for f in result.failures] == [POISON]
    assert result.failures[0].error_type == "TimeoutError"
    assert len(result.single.result.points) == len(SMALL)


def test_pool_killed_worker_is_survived():
    # The plan is module state, so forked pool workers inherit it; the
    # per-process call counter makes exactly one worker die on its 2nd
    # evaluation, and the retry lands as an earlier call in a rebuilt
    # worker.
    clean = run_study(small_spec())
    faults.install(FaultPlan(kind="kill", nth=2, times=1))
    result = run_study(small_spec(workers=2), policy=RETRY)
    assert result.failures == []
    assert point_labels(result) == point_labels(clean)
    assert front_labels(result) == front_labels(clean)


def test_pool_persistent_crash_becomes_failed_point():
    clean = run_study(small_spec())
    faults.install(FaultPlan(kind="kill", label=POISON))
    result = run_study(small_spec(workers=2), policy=SKIP)
    assert [f.label for f in result.failures] == [POISON]
    assert result.failures[0].error_type == "WorkerCrash"
    survivors = {
        label for label in point_labels(clean) if label != POISON
    }
    assert survivors <= set(point_labels(result))


# ----------------------------------------------------------------------
# cancel / checkpoint / resume
# ----------------------------------------------------------------------
def test_cancel_token_self_trips():
    token = CancelToken(after_points=3)
    token.tick(2)
    assert not token.cancelled
    token.tick()
    assert token.cancelled
    with pytest.raises(StudyInterrupted):
        token.raise_if_cancelled()


@pytest.mark.parametrize(
    "strategy, params, cut",
    [
        ("exhaustive", (), 4),
        ("random", (("budget", 8), ("seed", 3)), 3),
        (
            "simulated_annealing",
            (("max_evaluations", 20), ("seed", 7)),
            5,
        ),
    ],
)
def test_kill_and_resume_equals_uninterrupted(tmp_path, strategy, params, cut):
    spec = small_spec(name=f"resume-{strategy}", strategy=strategy,
                      params=params)
    clean = run_study(spec)

    path = tmp_path / "ck.json"
    interrupted = run_study(
        spec, checkpoint=path, cancel=CancelToken(after_points=cut),
    )
    assert interrupted.interrupted
    assert 0 < len(interrupted.single.result.points) < len(
        clean.single.result.points
    ) + 1
    assert json.loads(path.read_text())["interrupted"]

    resumed = Study.resume(path).run()
    assert not resumed.interrupted
    assert point_labels(resumed) == point_labels(clean)
    assert front_labels(resumed) == front_labels(clean)
    # Nothing recorded before the cut was re-evaluated.
    stats = resumed.single.stats
    assert stats.cache_hits >= cut
    assert stats.evaluated + stats.cache_hits == len(point_labels(clean))
    # A clean completion clears the flag for the next reader.
    assert not json.loads(path.read_text())["interrupted"]


def test_resume_rejects_tampered_checkpoint(tmp_path):
    path = tmp_path / "ck.json"
    run_study(
        small_spec(), checkpoint=path, cancel=CancelToken(after_points=2),
    )
    data = json.loads(path.read_text())
    data["spec"]["width"] = 32          # silently different study
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="corrupt"):
        Study.resume(path)


def test_checkpoint_manager_round_trip(tmp_path):
    path = tmp_path / "ck.json"
    manager = CheckpointManager({"name": "x"}, path=path, every=1)
    manager.record_point("run", "cfg-a", {"area": 1.0})
    manager.set_strategy_state("run", {"temp": 0.5})
    manager.write(force=True)
    loaded = CheckpointManager.load(path)
    assert loaded.points("run") == {"cfg-a": {"area": 1.0}}
    assert loaded.strategy_state("run") == {"temp": 0.5}


# ----------------------------------------------------------------------
# telemetry stays valid through interruption (S2)
# ----------------------------------------------------------------------
def test_interrupted_run_leaves_valid_trace(tmp_path):
    from repro.telemetry import Tracer
    from repro.telemetry.summarize import load_trace, summarize_trace

    trace_path = tmp_path / "trace.jsonl"
    tracer = Tracer(trace_path)
    try:
        result = run_study(
            small_spec(), tracer=tracer, collect_metrics=True,
            cancel=CancelToken(after_points=3),
        )
    finally:
        tracer.close()
    assert result.interrupted
    records = load_trace(trace_path)    # schema-validates every line
    summary = summarize_trace(records)
    (run,) = summary["runs"]
    assert run["interrupted"] == {"completed": 3, "total": len(SMALL)}


def test_failure_events_reach_trace_summary(tmp_path):
    from repro.telemetry import Tracer
    from repro.telemetry.summarize import load_trace, summarize_trace

    trace_path = tmp_path / "trace.jsonl"
    faults.install(FaultPlan(kind="raise", label=POISON))
    tracer = Tracer(trace_path)
    try:
        run_study(small_spec(), tracer=tracer, policy=RETRY)
    finally:
        tracer.close()
    summary = summarize_trace(load_trace(trace_path))
    (run,) = summary["runs"]
    assert run["retries"] == RETRY.attempts - 1
    (failure,) = run["failures"]
    assert failure["config"] == POISON
    assert failure["error"] == "InjectedFault"
    assert failure["attempts"] == RETRY.attempts


# ----------------------------------------------------------------------
# cache hardening
# ----------------------------------------------------------------------
def _seed_cache(tmp_path) -> tuple[ResultCache, object]:
    cache = ResultCache(tmp_path / "cache")
    config = SMALL[0]
    cache.put(
        "gcd",
        EvaluatedPoint(config=config, area=2.0, cycles=100),
        16,
    )
    return cache, config


def test_truncated_entry_is_quarantined(tmp_path):
    cache, config = _seed_cache(tmp_path)
    torn = faults.truncate_cache_entry(cache, "gcd", config, 16)
    assert cache.get("gcd", config, 16) is None
    assert cache.stats.quarantined == 1
    assert not os.path.exists(torn)
    quarantined = cache.directory / "quarantine" / os.path.basename(torn)
    assert quarantined.exists()
    # Re-evaluation replaces the slot; the poison never comes back.
    cache.put("gcd", EvaluatedPoint(config=config, area=2.0, cycles=100), 16)
    assert cache.get("gcd", config, 16) is not None


def test_stale_schema_is_miss_not_quarantine(tmp_path):
    cache, config = _seed_cache(tmp_path)
    path = cache._path(cache_key("gcd", config, 16))
    entry = json.loads(path.read_text())
    entry["schema"] = 999
    path.write_text(json.dumps(entry))
    assert cache.get("gcd", config, 16) is None
    assert cache.stats.quarantined == 0
    assert path.exists()                # stale is not corrupt


def test_verify_and_repair(tmp_path):
    cache, config = _seed_cache(tmp_path)
    cache.put("gcd", EvaluatedPoint(config=SMALL[1], area=3.0, cycles=50), 16)
    faults.truncate_cache_entry(cache, "gcd", config, 16)

    report = cache.verify()
    assert (report["checked"], report["ok"]) == (2, 1)
    assert len(report["corrupt"]) == 1
    assert report["quarantined"] == 0

    report = cache.verify(repair=True)
    assert report["quarantined"] == 1
    assert cache.verify() == {
        "checked": 1, "ok": 1, "stale": 0, "corrupt": [], "quarantined": 0,
    }


def _hammer_axis(directory: str, axis: str, rounds: int) -> None:
    cache = ResultCache(directory)
    config = small_space()[0]
    for i in range(rounds):
        if axis == "test":
            point = EvaluatedPoint(
                config=config, area=2.0, cycles=100, test_cost=1000 + i,
            )
            cache.put("gcd", point, 16, march="March C-")
        else:
            point = EvaluatedPoint(
                config=config, area=2.0, cycles=100, energy=5.0 + i,
            )
            cache.put("gcd", point, 16, energy_model="default")


def test_concurrent_axis_writers_do_not_drop_each_other(tmp_path):
    """S3: two processes hammer one key; flock + merge keep both axes."""
    directory = str(tmp_path / "cache")
    ResultCache(directory)              # create before the race starts
    ctx = multiprocessing.get_context("fork")
    writers = [
        ctx.Process(target=_hammer_axis, args=(directory, axis, 40))
        for axis in ("test", "energy")
    ]
    for p in writers:
        p.start()
    for p in writers:
        p.join(timeout=60)
        assert p.exitcode == 0

    cache = ResultCache(directory)
    point = cache.get(
        "gcd", small_space()[0], 16,
        march="March C-", energy_model="default",
    )
    assert point is not None
    assert point.test_cost == 1000 + 39     # last test-axis write
    assert point.energy == pytest.approx(5.0 + 39)
    # And the entry on disk is intact JSON with both axes present.
    entry = json.loads(
        cache._path(cache_key("gcd", small_space()[0], 16)).read_text()
    )
    assert entry["test_cost"] is not None and entry["energy"] is not None


# ----------------------------------------------------------------------
# up-front validation (S1)
# ----------------------------------------------------------------------
def test_spec_rejects_bad_workers():
    with pytest.raises(ValueError, match="workers must be >= 1"):
        small_spec(workers=0)


def test_validate_prefixes_unknown_names():
    with pytest.raises(KeyError, match="study 'resilience'.*known"):
        small_spec(workloads=("no-such-workload",)).validate()
    with pytest.raises(KeyError, match="study 'resilience'"):
        StudySpec(name="resilience", workloads=("gcd",),
                  space="no-such-space").validate()


def test_unusable_cache_dir_message(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    with pytest.raises(OSError, match="--cache-dir"):
        ResultCache(blocker / "cache")


def test_study_rejects_bad_workers_override():
    with pytest.raises(ValueError, match="workers must be >= 1"):
        Study(small_spec(), workers=0)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    base = ["study", "--workloads", "gcd", "--space", "small",
            "--no-cache", "-q"]
    assert main(base + ["--cancel-after", "2"]) == 3

    faults.install(FaultPlan(kind="raise", label=POISON))
    assert main(base + ["--fault-policy", "skip"]) == 4
    capsys.readouterr()


def test_cli_cache_verify_and_repair(tmp_path, capsys):
    from repro.__main__ import main

    cache, config = _seed_cache(tmp_path)
    directory = str(cache.directory)
    assert main(["cache", "verify", "--cache-dir", directory]) == 0
    faults.truncate_cache_entry(cache, "gcd", config, 16)
    assert main(["cache", "verify", "--cache-dir", directory]) == 1
    assert main(["cache", "repair", "--cache-dir", directory]) == 0
    assert main(["cache", "verify", "--cache-dir", directory]) == 0
    capsys.readouterr()


def test_cli_checkpoint_resume_round_trip(tmp_path, capsys):
    from repro.__main__ import main

    path = str(tmp_path / "ck.json")
    base = ["study", "--workloads", "gcd", "--space", "small",
            "--no-cache", "-q"]
    assert main(base + ["--checkpoint", path, "--cancel-after", "3"]) == 3
    assert main(["study", "--resume", path, "--no-cache", "-q"]) == 0
    assert not json.loads(open(path).read())["interrupted"]
    capsys.readouterr()
