"""Declarative study descriptions.

A :class:`StudySpec` is the *what* of one exploration: which workloads
(registry names), over which space (a registry name or inline
configurations), at which datapath width, under which objective vector,
driven by which search strategy.  It is frozen and JSON-round-trippable
so studies can live in version control next to the results they
produced, exactly like campaign specs — a campaign *is* N studies
sharing one result cache.

Execution knobs that do not change results (cache directory, progress
callbacks) stay out of the spec; the parallelism hint ``workers`` is
included because strategies may consult it when deciding how to batch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.apps.registry import workload_entry
from repro.explore.space import ArchConfig, RFConfig, space_by_name
from repro.study.objectives import resolve_objectives
from repro.study.strategies import validate_strategy_params

#: Spec value meaning "the space is given inline, not by registry name".
INLINE_SPACE = "inline"


def _json_safe(value):
    """Normalise one strategy-param value to a JSON-serialisable shape.

    Config objects become their dict form (strategies coerce them back),
    so a spec carrying e.g. the iterative strategy's ``seeds`` round-trips
    through JSON like every other field.
    """
    if isinstance(value, (ArchConfig, RFConfig)):
        return value.to_dict()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ValueError(
        f"strategy param value {value!r} is not JSON-serialisable"
    )


@dataclass(frozen=True)
class StudySpec:
    """One study: workloads x (space, width) under objectives + strategy."""

    name: str
    workloads: tuple[str, ...]
    space: str | tuple[ArchConfig, ...] = "crypt"
    width: int = 16
    objectives: tuple[str, ...] = ("area", "cycles")
    strategy: str = "exhaustive"
    strategy_params: tuple[tuple[str, object], ...] = ()
    select: bool = False
    weights: tuple[float, ...] | None = None
    march: str = "March C-"
    tech: str = "default"
    workers: int = 1

    def __post_init__(self) -> None:
        # Normalise convenience forms so equality/serialisation see one
        # canonical shape: a single workload name, a list space, a dict
        # of strategy params.
        if isinstance(self.workloads, str):
            object.__setattr__(self, "workloads", (self.workloads,))
        else:
            object.__setattr__(self, "workloads", tuple(self.workloads))
        if not isinstance(self.space, str):
            object.__setattr__(self, "space", tuple(self.space))
        object.__setattr__(self, "objectives", tuple(self.objectives))
        params = (
            self.strategy_params
            if isinstance(self.strategy_params, dict)
            else dict(self.strategy_params)
        )
        object.__setattr__(
            self,
            "strategy_params",
            tuple(sorted((k, _json_safe(v)) for k, v in params.items())),
        )
        if self.weights is not None:
            object.__setattr__(self, "weights", tuple(self.weights))

        if not self.name:
            raise ValueError("study needs a name")
        if not self.workloads:
            raise ValueError("study needs at least one workload")
        if not self.objectives:
            raise ValueError("study needs at least one objective")
        if isinstance(self.space, tuple) and not self.space:
            raise ValueError("inline space needs at least one configuration")
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1 (got {self.workers}); "
                "use workers=1 for the serial path"
            )
        # Fail before the sweep runs, not in the selection afterwards
        # (extra weights beyond the vector's dimension are ignored, as
        # in the campaign surface).
        if self.weights is not None and len(self.weights) < len(
            self.objectives
        ):
            raise ValueError(
                f"need {len(self.objectives)} weights for objectives "
                f"{self.objectives}, got {len(self.weights)}"
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    @property
    def params(self) -> dict:
        """The strategy params as a plain dict."""
        return dict(self.strategy_params)

    @property
    def space_label(self) -> str:
        """The space's registry name, or ``inline`` for literal configs."""
        return self.space if isinstance(self.space, str) else INLINE_SPACE

    def resolve_space(self) -> list[ArchConfig]:
        """The concrete configuration list this study sweeps."""
        if isinstance(self.space, str):
            return space_by_name(self.space)
        return list(self.space)

    def validate(self) -> None:
        """Resolve every registry reference (raises KeyError/ValueError).

        Runs before anything is evaluated, so a typo in a workload or
        space name fails in milliseconds with the registry's
        known-names message instead of mid-sweep.
        """
        from repro.energy.model import technology_by_name

        try:
            for workload in self.workloads:
                workload_entry(workload)
            if isinstance(self.space, str):
                space_by_name(self.space)
            resolve_objectives(self.objectives)
            validate_strategy_params(self.strategy, self.params)
            technology_by_name(self.tech)
        except (KeyError, ValueError) as exc:
            kind = type(exc)
            message = exc.args[0] if exc.args else str(exc)
            raise kind(f"study {self.name!r}: {message}") from None

    @property
    def spec_id(self) -> str:
        """Stable content hash of this spec (hex SHA-256).

        Every party that needs to recognise "the same study" — service
        clients, the job queue's duplicate-submit dedupe, checkpoint
        files (:func:`~repro.resilience.checkpoint.spec_digest` is the
        same function) — keys on this id, so they can never disagree
        about identity.  Two specs that normalise to the same canonical
        dict share an id; any field change produces a new one.
        """
        from repro.resilience.checkpoint import spec_digest

        return spec_digest(self.to_dict())

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        space = (
            self.space
            if isinstance(self.space, str)
            else [config.to_dict() for config in self.space]
        )
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "space": space,
            "width": self.width,
            "objectives": list(self.objectives),
            "strategy": self.strategy,
            "strategy_params": self.params,
            "select": self.select,
            "weights": None if self.weights is None else list(self.weights),
            "march": self.march,
            "tech": self.tech,
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> StudySpec:
        space = data.get("space", "crypt")
        if not isinstance(space, str):
            space = tuple(ArchConfig.from_dict(c) for c in space)
        weights = data.get("weights")
        return cls(
            name=str(data["name"]),
            workloads=tuple(data["workloads"]),
            space=space,
            width=int(data.get("width", 16)),
            objectives=tuple(data.get("objectives", ("area", "cycles"))),
            strategy=str(data.get("strategy", "exhaustive")),
            strategy_params=dict(data.get("strategy_params", {})),
            select=bool(data.get("select", False)),
            weights=None if weights is None else tuple(
                float(w) for w in weights
            ),
            march=str(data.get("march", "March C-")),
            tech=str(data.get("tech", "default")),
            workers=int(data.get("workers", 1)),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> StudySpec:
        return cls.from_dict(json.loads(text))

    def __hash__(self) -> int:
        # The generated dataclass hash would require every strategy-param
        # value to be hashable, but structured params (iterative seeds)
        # normalise to lists/dicts.  The content hash is unique per
        # canonical spec, so hash that instead — specs stay usable as
        # dict/lru_cache keys.
        return hash(self.spec_id)
