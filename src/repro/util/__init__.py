"""Small shared utilities: bit manipulation and deterministic RNG helpers."""

from repro.util.bitops import (
    bit,
    bits_of,
    from_bits,
    mask,
    parity,
    popcount,
    rotl,
    rotr,
    sign_extend,
    to_signed,
    to_unsigned,
)

__all__ = [
    "bit",
    "bits_of",
    "from_bits",
    "mask",
    "parity",
    "popcount",
    "rotl",
    "rotr",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
