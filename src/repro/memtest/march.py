"""March test algorithms for (multi-port) memories.

Notation follows van de Goor: an algorithm is a sequence of *march
elements*, each an address sweep (up ``^``, down ``v`` or either ``*``)
applying a fixed op string to every address.  Lengths are the classic
ones: MATS+ 5n, March X 6n, March Y 8n, March C- 10n.

``n_p`` for the RF cost formula (eq. 12) is the *operation count* of the
chosen algorithm over the register bank, times the number of data
backgrounds, plus the inter-port overhead of Hamdioui & van de Goor [15]
when the file is multi-ported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memtest.memory_model import FaultyMemory
from repro.util.bitops import mask

#: March op kinds: ("r", v) read-expect-v; ("w", v) write-v.
Op = tuple[str, int]


@dataclass(frozen=True)
class MarchElement:
    """One address sweep: direction in {'up', 'down', 'any'} plus ops."""

    direction: str
    ops: tuple[Op, ...]

    def __post_init__(self) -> None:
        if self.direction not in ("up", "down", "any"):
            raise ValueError(f"bad direction {self.direction!r}")
        for kind, value in self.ops:
            if kind not in ("r", "w") or value not in (0, 1):
                raise ValueError(f"bad op {(kind, value)!r}")

    def addresses(self, num_words: int) -> range:
        if self.direction == "down":
            return range(num_words - 1, -1, -1)
        return range(num_words)


@dataclass(frozen=True)
class MarchTest:
    """A named march algorithm."""

    name: str
    elements: tuple[MarchElement, ...]

    @property
    def ops_per_word(self) -> int:
        return sum(len(e.ops) for e in self.elements)

    def length(self, num_words: int) -> int:
        """Total memory operations (the classic '{k}n' figure)."""
        return self.ops_per_word * num_words


def _element(spec: str) -> MarchElement:
    """Parse e.g. ``'^(r0,w1)'`` / ``'v(r1,w0)'`` / ``'*(w0)'``."""
    direction = {"^": "up", "v": "down", "*": "any"}[spec[0]]
    body = spec[spec.index("(") + 1 : spec.rindex(")")]
    ops = tuple((op[0], int(op[1])) for op in body.split(","))
    return MarchElement(direction, ops)


def _march(name: str, *specs: str) -> MarchTest:
    return MarchTest(name, tuple(_element(s) for s in specs))


MATS_PLUS = _march("MATS+", "*(w0)", "^(r0,w1)", "v(r1,w0)")
MARCH_X = _march("March X", "*(w0)", "^(r0,w1)", "v(r1,w0)", "*(r0)")
MARCH_Y = _march("March Y", "*(w0)", "^(r0,w1,r1)", "v(r1,w0,r0)", "*(r0)")
MARCH_CM = _march(
    "March C-",
    "*(w0)", "^(r0,w1)", "^(r1,w0)", "v(r0,w1)", "v(r1,w0)", "*(r0)",
)
MARCH_A = _march(
    "March A",
    "*(w0)", "^(r0,w1,w0,w1)", "^(r1,w0,w1)", "v(r1,w0,w1,w0)", "v(r0,w1,w0)",
)
MARCH_B = _march(
    "March B",
    "*(w0)", "^(r0,w1,r1,w0,r0,w1)", "^(r1,w0,w1)",
    "v(r1,w0,w1,w0)", "v(r0,w1,w0)",
)

MARCH_ALGORITHMS: dict[str, MarchTest] = {
    t.name: t
    for t in (MATS_PLUS, MARCH_X, MARCH_Y, MARCH_CM, MARCH_A, MARCH_B)
}

#: Default data backgrounds (solid); callers may add checkerboards etc.
SOLID_BACKGROUND = 0


@dataclass
class MarchResult:
    """Outcome of applying one march test to one memory instance."""

    test_name: str
    passed: bool
    operations: int
    first_failure: str | None = None


def run_march(
    test: MarchTest,
    memory: FaultyMemory,
    background: int = SOLID_BACKGROUND,
) -> MarchResult:
    """Apply a march test; any read mismatch fails the test."""
    zero = background & mask(memory.width)
    one = ~background & mask(memory.width)
    data = {0: zero, 1: one}
    operations = 0
    for element in test.elements:
        for addr in element.addresses(memory.num_words):
            for kind, value in element.ops:
                operations += 1
                if kind == "w":
                    memory.write(addr, data[value])
                    continue
                got = memory.read(addr)
                if got != data[value]:
                    return MarchResult(
                        test.name,
                        passed=False,
                        operations=operations,
                        first_failure=(
                            f"addr {addr}: expected {data[value]:#x}, "
                            f"read {got:#x}"
                        ),
                    )
    return MarchResult(test.name, passed=True, operations=operations)


def march_pattern_count(
    test: MarchTest,
    num_words: int,
    backgrounds: int = 1,
    read_ports: int = 1,
    write_ports: int = 1,
) -> int:
    """``n_p`` for a register file under eq. 12.

    The base count is the march length over the bank, times the data
    backgrounds.  Multi-port files add the inter-port element of [15]:
    every port beyond the first in each direction re-runs one
    read-and-verify sweep (2n operations) to exercise port decoders and
    detect inter-port shorts.
    """
    if backgrounds < 1:
        raise ValueError("at least one data background required")
    base = test.length(num_words) * backgrounds
    extra_ports = max(0, read_ports - 1) + max(0, write_ports - 1)
    return base + 2 * num_words * extra_ports
