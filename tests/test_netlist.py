"""Tests for the netlist graph: construction, ordering, evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netlist import CellType, Netlist, NetlistError
from repro.netlist.netlist import _split_indexed


def _xor_netlist():
    nl = Netlist("pair")
    a = nl.add_input("a")
    b = nl.add_input("b")
    x = nl.add_gate(CellType.XOR, [a, b], name="x")
    nl.add_output(x)
    return nl, a, b, x


def test_simple_evaluation():
    nl, a, b, x = _xor_netlist()
    values = nl.evaluate({a: 1, b: 0})
    assert values[x] == 1
    values = nl.evaluate({a: 1, b: 1})
    assert values[x] == 0


def test_bit_parallel_evaluation_matches_scalar():
    nl, a, b, x = _xor_netlist()
    # patterns: (a,b) = (0,0) (1,0) (0,1) (1,1)
    values = nl.evaluate({a: 0b0110, b: 0b1100}, num_patterns=4)
    assert values[x] == 0b1010


def test_fanin_limits_enforced():
    nl = Netlist("t")
    a = nl.add_input()
    with pytest.raises(NetlistError):
        nl.add_gate(CellType.NOT, [a, a])
    with pytest.raises(NetlistError):
        nl.add_gate(CellType.AND, [a])
    with pytest.raises(NetlistError):
        nl.add_gate(CellType.AND, [a] * 5)


def test_double_driver_rejected():
    nl = Netlist("t")
    a = nl.add_input()
    x = nl.add_gate(CellType.NOT, [a])
    with pytest.raises(NetlistError):
        nl.add_gate(CellType.NOT, [a], output=x)


def test_driving_primary_input_rejected():
    nl = Netlist("t")
    a = nl.add_input()
    b = nl.add_input()
    with pytest.raises(NetlistError):
        nl.add_gate(CellType.NOT, [a], output=b)


def test_cycle_detection():
    nl = Netlist("t")
    a = nl.add_input()
    loop = nl.new_net("loop")
    x = nl.add_gate(CellType.AND, [a, loop])
    # close the loop: loop driven by a gate reading x
    nl.add_gate(CellType.NOT, [x], output=loop)
    with pytest.raises(NetlistError, match="cycle"):
        nl.topological_order()


def test_unknown_net_rejected():
    nl = Netlist("t")
    with pytest.raises(NetlistError):
        nl.add_gate(CellType.NOT, [42])


def test_check_flags_undriven_used_net():
    nl = Netlist("t")
    floating = nl.new_net("floating")
    nl.add_gate(CellType.NOT, [floating])
    with pytest.raises(NetlistError, match="undriven"):
        nl.check()


def test_topological_order_respects_dependencies():
    nl = Netlist("t")
    a = nl.add_input()
    x = nl.add_gate(CellType.NOT, [a])
    y = nl.add_gate(CellType.NOT, [x])
    nl.add_output(y)
    order = nl.topological_order()
    assert order.index(nl.nets[x].driver) < order.index(nl.nets[y].driver)


def test_gate_levels_monotone():
    nl = Netlist("t")
    a = nl.add_input()
    x = nl.add_gate(CellType.NOT, [a])
    y = nl.add_gate(CellType.NOT, [x])
    z = nl.add_gate(CellType.AND, [x, y])
    levels = nl.gate_levels()
    assert levels[nl.nets[x].driver] < levels[nl.nets[y].driver]
    assert levels[nl.nets[z].driver] > levels[nl.nets[y].driver]


def test_fanout_cone_and_fanin_cone():
    nl = Netlist("t")
    a = nl.add_input()
    b = nl.add_input()
    x = nl.add_gate(CellType.AND, [a, b])
    y = nl.add_gate(CellType.NOT, [x])
    nl.add_output(y)
    cone = nl.fanout_cone(a)
    assert cone == {nl.nets[x].driver, nl.nets[y].driver}
    fin = nl.fanin_cone(y)
    assert fin == {nl.nets[x].driver, nl.nets[y].driver}


def test_const_cells_evaluate():
    nl = Netlist("t")
    one = nl.add_gate(CellType.CONST1, [])
    zero = nl.add_gate(CellType.CONST0, [])
    nl.add_output(one)
    nl.add_output(zero)
    vals = nl.evaluate({}, num_patterns=3)
    assert vals[one] == 0b111
    assert vals[zero] == 0


def test_evaluate_words_roundtrip():
    nl = Netlist("t")
    bits = [nl.add_input(f"a[{i}]") for i in range(4)]
    outs = [nl.add_gate(CellType.NOT, [b]) for b in bits]
    for i, o in enumerate(outs):
        nl.nets[o].name = f"y[{i}]"
        nl.add_output(o)
    result = nl.evaluate_words({"a": 0b0101})
    assert result["y"] == 0b1010


def test_split_indexed():
    assert _split_indexed("word[3]") == ("word", 3)
    assert _split_indexed("plain") == ("plain", 0)
    assert _split_indexed("odd[x]") == ("odd[x]", 0)


@given(st.integers(min_value=0, max_value=63), st.integers(min_value=1, max_value=6))
def test_parallel_patterns_agree_with_single(seed, npat):
    import random

    rng = random.Random(seed)
    nl = Netlist("rand")
    nets = [nl.add_input() for _ in range(4)]
    for _ in range(12):
        cell = rng.choice([CellType.AND, CellType.OR, CellType.XOR, CellType.NOT])
        fan = 1 if cell is CellType.NOT else 2
        ins = [rng.choice(nets) for _ in range(fan)]
        nets.append(nl.add_gate(cell, ins))
    nl.add_output(nets[-1])

    patterns = [rng.getrandbits(4) for _ in range(npat)]
    packed = {
        pi: sum(((p >> i) & 1) << k for k, p in enumerate(patterns))
        for i, pi in enumerate(nl.inputs)
    }
    parallel_out = nl.evaluate(packed, num_patterns=npat)[nl.outputs[0]]
    for k, p in enumerate(patterns):
        single = nl.evaluate(
            {pi: (p >> i) & 1 for i, pi in enumerate(nl.inputs)}
        )[nl.outputs[0]]
        assert ((parallel_out >> k) & 1) == single
