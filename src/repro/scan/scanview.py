"""Scan view construction: compose core + socket logic into one netlist.

Under full scan, the ATPG sees a component as one combinational circuit:
the functional core plus every socket controller, with all pipeline and
FSM flip-flops opened into pseudo-inputs/pseudo-outputs (which our
netlists already expose as ordinary PIs/POs).  :func:`scan_view` builds
that composite so ``n_p_scan`` is measured on the same structure a scan
insertion tool would hand to ATPG.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist


def compose_netlists(name: str, parts: list[Netlist]) -> Netlist:
    """Disjoint union of netlists (no cross-wiring), port names prefixed."""
    composite = Netlist(name)
    for index, part in enumerate(parts):
        prefix = f"u{index}_{part.name}"
        net_map: dict[int, int] = {}
        for net in part.nets:
            net_map[net.nid] = composite.new_net(f"{prefix}.{net.name}")
        for pi in part.inputs:
            composite.inputs.append(net_map[pi])
        for gate in part.gates:
            composite.add_gate(
                gate.cell_type,
                [net_map[n] for n in gate.inputs],
                output=net_map[gate.output],
            )
        for po in part.outputs:
            composite.add_output(net_map[po])
    composite.check()
    return composite


def scan_view(core: Netlist, sockets: list[Netlist], name: str | None = None) -> Netlist:
    """Composite 'what-the-scan-ATPG-sees' netlist for one component."""
    view_name = name or f"{core.name}_scanview"
    return compose_netlists(view_name, [core] + sockets)
