"""Smaller IR workloads for examples, tests and exploration sanity.

Each builder returns an :class:`~repro.compiler.ir.IRFunction` plus a
documented memory contract so the tests can check results against plain
Python.
"""

from __future__ import annotations

from repro.compiler.ir import IRBuilder, IRFunction


def build_gcd_ir(x: int, y: int, out_addr: int = 100) -> IRFunction:
    """Euclid by repeated subtraction; result word at ``out_addr``."""
    b = IRBuilder("gcd")
    b.block("entry")
    b.li(x, "%x")
    b.li(y, "%y")
    b.jump("check")
    b.block("check")
    c = b.ne("%x", "%y")
    b.branch(c, "body", "done")
    b.block("body")
    g = b.ltu("%x", "%y")
    b.branch(g, "swapsub", "sub")
    b.block("sub")
    b.sub("%x", "%y", "%x")
    b.jump("check")
    b.block("swapsub")
    b.sub("%y", "%x", "%y")
    b.jump("check")
    b.block("done")
    b.store(out_addr, "%x")
    b.halt()
    return b.finish()


def build_fir_ir(
    samples: list[int],
    taps: list[int],
    x_base: int = 200,
    h_base: int = 400,
    y_base: int = 600,
) -> IRFunction:
    """FIR filter: ``y[i] = sum_k h[k] * x[i - k]`` (needs a MUL unit).

    Out-of-range history reads as zero; output length equals the input
    length.
    """
    n, k = len(samples), len(taps)
    b = IRBuilder("fir")
    b.data_table(x_base, samples)
    b.data_table(h_base, taps)

    b.block("entry")
    b.li(0, "%i")
    b.jump("outer")

    b.block("outer")
    b.li(0, "%acc")
    b.li(0, "%k")
    b.jump("inner_check")

    b.block("inner_check")
    km = b.ltu("%k", k)
    b.branch(km, "inner", "emit")

    b.block("inner")
    idx = b.sub("%i", "%k")
    in_range = b.ltu(idx, n)          # unsigned: negative wraps high
    b.branch(in_range, "acc", "inner_next")

    b.block("acc")
    xval = b.load(b.add(b.sub("%i", "%k"), x_base))
    hval = b.load(b.add("%k", h_base))
    prod = b.mul(xval, hval)
    b.add("%acc", prod, "%acc")
    b.jump("inner_next")

    b.block("inner_next")
    b.add("%k", 1, "%k")
    b.jump("inner_check")

    b.block("emit")
    b.store(b.add("%i", y_base), "%acc")
    b.add("%i", 1, "%i")
    done = b.ltu("%i", n)
    b.branch(done, "outer", "exit")

    b.block("exit")
    b.halt()
    return b.finish()


def fir_reference(samples: list[int], taps: list[int], width: int = 16) -> list[int]:
    """Plain-Python FIR matching :func:`build_fir_ir`."""
    mask = (1 << width) - 1
    out = []
    for i in range(len(samples)):
        acc = 0
        for k, tap in enumerate(taps):
            if 0 <= i - k < len(samples):
                acc += samples[i - k] * tap
        out.append(acc & mask)
    return out


def build_dotprod_ir(
    a: list[int],
    bvec: list[int],
    a_base: int = 200,
    b_base: int = 400,
    out_addr: int = 100,
) -> IRFunction:
    """Dot product of two equal-length vectors (needs a MUL unit)."""
    if len(a) != len(bvec):
        raise ValueError("vectors must have equal length")
    n = len(a)
    b = IRBuilder("dotprod")
    b.data_table(a_base, a)
    b.data_table(b_base, bvec)

    b.block("entry")
    b.li(0, "%i")
    b.li(0, "%acc")
    b.jump("loop")

    b.block("loop")
    x = b.load(b.add("%i", a_base))
    y = b.load(b.add("%i", b_base))
    b.add("%acc", b.mul(x, y), "%acc")
    b.add("%i", 1, "%i")
    c = b.ltu("%i", n)
    b.branch(c, "loop", "done")

    b.block("done")
    b.store(out_addr, "%acc")
    b.halt()
    return b.finish()


def build_checksum_ir(
    words: list[int],
    base: int = 200,
    out_addr: int = 100,
) -> IRFunction:
    """Rotating XOR/add checksum over a memory block (ALU-only)."""
    n = len(words)
    b = IRBuilder("checksum")
    b.data_table(base, words)

    b.block("entry")
    b.li(0, "%i")
    b.li(0, "%sum")
    b.jump("loop")

    b.block("loop")
    w = b.load(b.add("%i", base))
    rot = b.or_(b.shl("%sum", 1), b.shr("%sum", 15))
    b.xor(rot, w, "%sum")
    b.add("%i", 1, "%i")
    c = b.ltu("%i", n)
    b.branch(c, "loop", "done")

    b.block("done")
    b.store(out_addr, "%sum")
    b.halt()
    return b.finish()


def checksum_reference(words: list[int], width: int = 16) -> int:
    """Plain-Python model of :func:`build_checksum_ir`."""
    mask = (1 << width) - 1
    total = 0
    for w in words:
        rot = ((total << 1) | (total >> (width - 1))) & mask
        total = rot ^ (w & mask)
    return total


def build_crc16_ir(
    words: list[int],
    base: int = 200,
    out_addr: int = 100,
    poly: int = 0x1021,
) -> IRFunction:
    """CRC-16 (CCITT polynomial) over a memory block, bit-serial.

    The closest cousin of the Crypt workload: a tight shift/xor inner
    loop with a data-dependent branch, 16 iterations per word.
    """
    n = len(words)
    b = IRBuilder("crc16")
    b.data_table(base, words)

    b.block("entry")
    b.li(0, "%i")
    b.li(0xFFFF, "%crc")
    b.jump("word_loop")

    b.block("word_loop")
    w = b.load(b.add("%i", base))
    b.xor("%crc", w, "%crc")
    b.li(0, "%bit")
    b.jump("bit_loop")

    b.block("bit_loop")
    msb = b.and_(b.shr("%crc", 15), 1)
    b.shl("%crc", 1, "%crc")
    taken = b.ne(msb, 0)
    b.branch(taken, "apply_poly", "bit_next")

    b.block("apply_poly")
    b.xor("%crc", poly, "%crc")
    b.jump("bit_next")

    b.block("bit_next")
    b.add("%bit", 1, "%bit")
    more = b.ltu("%bit", 16)
    b.branch(more, "bit_loop", "word_next")

    b.block("word_next")
    b.add("%i", 1, "%i")
    more_words = b.ltu("%i", n)
    b.branch(more_words, "word_loop", "done")

    b.block("done")
    b.store(out_addr, "%crc")
    b.halt()
    return b.finish()


def crc16_reference(words: list[int], poly: int = 0x1021) -> int:
    """Plain-Python model of :func:`build_crc16_ir`."""
    crc = 0xFFFF
    for w in words:
        crc ^= w & 0xFFFF
        for _ in range(16):
            msb = (crc >> 15) & 1
            crc = (crc << 1) & 0xFFFF
            if msb:
                crc ^= poly
    return crc
