"""A workload registry: IR builders addressable by name.

The campaign engine and the ``python -m repro`` CLI refer to workloads
by name ("crypt", "fir", ...) so campaign specs stay declarative JSON
instead of Python call sites.  Each entry pins the builder's reference
inputs, making the produced IR — and therefore cache keys and results —
reproducible across runs and machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.compiler.ir import IRFunction
from repro.apps.crypt_kernel import build_crypt_ir
from repro.apps.kernels import (
    build_checksum_ir,
    build_crc16_ir,
    build_dotprod_ir,
    build_fir_ir,
    build_gcd_ir,
)

#: Reference inputs for the registered kernels (documented, fixed).
_FIR_SAMPLES = [10, 64, 23, 99, 5, 31, 77, 42, 18, 63, 11, 90]
_FIR_TAPS = [3, 7, 1, 5]
_VEC_A = [3, 1, 4, 1, 5, 9, 2, 6]
_VEC_B = [2, 7, 1, 8, 2, 8, 1, 8]
_BLOCK = [0x1234, 0xBEEF, 0x0042, 0x7F7F, 0xA5A5, 0x0001, 0xFFFE, 0x8000]


@dataclass(frozen=True)
class WorkloadEntry:
    """One named workload: how to build it and what it needs."""

    name: str
    builder: Callable[[], IRFunction]
    description: str
    needs_mul: bool = False

    def build(self) -> IRFunction:
        return self.builder()


_REGISTRY: dict[str, WorkloadEntry] = {}


def register_workload(
    name: str,
    builder: Callable[[], IRFunction],
    description: str = "",
    needs_mul: bool = False,
) -> None:
    """Add (or replace) a named workload."""
    _REGISTRY[name] = WorkloadEntry(
        name=name, builder=builder, description=description,
        needs_mul=needs_mul,
    )


def workload_names() -> list[str]:
    """Names accepted by :func:`build_workload` (sorted)."""
    return sorted(_REGISTRY)


def workload_entry(name: str) -> WorkloadEntry:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise KeyError(
            f"unknown workload {name!r} (known: {known})"
        ) from None


def build_workload(name: str) -> IRFunction:
    """Build the IR of a registered workload."""
    return workload_entry(name).build()


register_workload(
    "crypt",
    lambda: build_crypt_ir("password", "ab"),
    "Unix crypt(3) kernel, the paper's application",
)
register_workload(
    "gcd",
    lambda: build_gcd_ir(252, 105),
    "Euclid by repeated subtraction",
)
register_workload(
    "fir",
    lambda: build_fir_ir(_FIR_SAMPLES, _FIR_TAPS),
    "4-tap FIR filter over 12 samples",
    needs_mul=True,
)
register_workload(
    "dotprod",
    lambda: build_dotprod_ir(_VEC_A, _VEC_B),
    "dot product of two 8-vectors",
    needs_mul=True,
)
register_workload(
    "checksum",
    lambda: build_checksum_ir(_BLOCK),
    "rotating XOR/add checksum over an 8-word block",
)
register_workload(
    "crc16",
    lambda: build_crc16_ir(_BLOCK),
    "bit-serial CRC-16/CCITT over an 8-word block",
)
