"""Assembler syntax, labels, data directives and error reporting."""

import pytest

from repro.tta import AssemblerError, Literal, PortRef, assemble

from tests.conftest import make_arch


@pytest.fixture
def arch():
    return make_arch(2)


def test_basic_moves(arch):
    p = assemble("#5 -> alu0.a ; #7 -> alu0.b:add\n", arch)
    assert len(p) == 1
    moves = p.instructions[0].moves
    assert moves[0].src == Literal(5)
    assert moves[0].dst == PortRef("alu0", "a")
    assert moves[1].opcode == "add"


def test_register_indices(arch):
    p = assemble("rf0.r0[3] -> alu0.a\n", arch)
    move = p.instructions[0].moves[0]
    assert move.src_reg == 3
    assert move.dst_reg is None


def test_guards(arch):
    p = assemble("(g0) #1 -> rf0.w0[0]\n(!g2) #2 -> rf0.w0[1]\n", arch)
    g0 = p.instructions[0].moves[0].guard
    g2 = p.instructions[1].moves[0].guard
    assert g0.index == 0 and not g0.invert
    assert g2.index == 2 and g2.invert


def test_labels_resolve(arch):
    p = assemble(
        """
    start:
        #1 -> rf0.w0[0]
        @start -> pc.target:jump
        nop
        """,
        arch,
    )
    assert p.labels["start"] == 0
    jump = p.instructions[1].moves[0]
    assert jump.src == Literal(0)


def test_forward_label(arch):
    p = assemble(
        """
        @end -> pc.target:jump
        nop
    end:
        halt
        """,
        arch,
    )
    assert p.instructions[0].moves[0].src == Literal(2)


def test_trailing_label_points_past_end(arch):
    p = assemble(
        """
        #1 -> rf0.w0[0]
    exit:
        """,
        arch,
    )
    assert p.labels["exit"] == 1


def test_halt_variants(arch):
    p = assemble("halt\n", arch)
    assert p.instructions[0].halt
    p = assemble("#1 -> rf0.w0[0] ; halt\n", arch)
    assert p.instructions[0].halt
    assert len(p.instructions[0].moves) == 1


def test_data_directive(arch):
    p = assemble(".data 100 1 0x10 3\nhalt\n", arch)
    assert p.data == {100: 1, 101: 16, 102: 3}


def test_comments_ignored(arch):
    p = assemble(
        """
        ; a full-line comment
        #1 -> rf0.w0[0]   // trailing comment
        """,
        arch,
    )
    assert len(p) == 1


def test_hex_and_negative_immediates(arch):
    p = assemble("#0x1F -> rf0.w0[0]\n#-3 -> rf0.w0[1]\n", arch)
    assert p.instructions[0].moves[0].src == Literal(31)
    assert p.instructions[1].moves[0].src == Literal(-3)


def test_too_many_slots_rejected(arch):
    with pytest.raises(AssemblerError, match="buses"):
        assemble("#1 -> rf0.w0[0] ; #2 -> rf0.w0[1] ; #3 -> rf0.w0[2]\n", arch)


def test_bad_move_rejected(arch):
    with pytest.raises(AssemblerError, match="cannot parse"):
        assemble("this is not a move\n", arch)


def test_undefined_label_rejected(arch):
    with pytest.raises(AssemblerError, match="undefined label"):
        assemble("@nowhere -> pc.target:jump\n", arch)


def test_bad_data_rejected(arch):
    with pytest.raises(AssemblerError, match=".data"):
        assemble(".data 100\n", arch)
    with pytest.raises(AssemblerError, match="literal"):
        assemble(".data 100 xyz\n", arch)


def test_bad_immediate_rejected(arch):
    with pytest.raises(AssemblerError, match="bad immediate"):
        assemble("#zz -> rf0.w0[0]\n", arch)
