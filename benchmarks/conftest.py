"""Shared benchmark fixtures and artifact recording.

Every benchmark regenerates one of the paper's tables or figures and
writes a human-readable artifact under ``benchmarks/results/`` so the
regenerated rows/series survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps.crypt_kernel import build_crypt_ir
from repro.explore import crypt_space
from repro.study import run_exploration
from repro.testcost import attach_test_costs

RESULTS_DIR = Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> Path:
    """Write a regenerated figure/table to benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def crypt_exploration():
    """The full Crypt design-space exploration, shared by the figure
    benches (Fig. 2 measures it; Figs. 8/9 build on the same points)."""
    workload = build_crypt_ir("password", "ab")
    result = run_exploration(workload, crypt_space())
    attach_test_costs(result.pareto2d)
    return result
