"""Three-address IR with basic blocks.

Deliberately small: word-sized virtual registers, explicit memory ops,
compare ops producing 0/1, and three terminators (jump, conditional
branch, halt).  The Crypt kernel and the other workloads are authored
against :class:`IRBuilder`; the interpreter executes the IR directly and
the scheduler lowers it to move programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Arithmetic/logic opcodes (map 1:1 onto FU ops).
ALU_OPCODES = {"add", "sub", "and", "or", "xor", "shl", "shr", "sra"}
MUL_OPCODES = {"mul"}
CMP_OPCODES = {"eq", "ne", "ltu", "geu", "lts", "ges"}
LOAD_OPCODES = {"ld", "ld_ls", "ld_lu", "ld_h"}
STORE_OPCODES = {"st"}
MISC_OPCODES = {"li", "mov"}
ALL_OPCODES = (
    ALU_OPCODES | MUL_OPCODES | CMP_OPCODES | LOAD_OPCODES | STORE_OPCODES
    | MISC_OPCODES
)

#: An operand is a virtual-register name or an int literal.
Operand = "str | int"


class IRError(Exception):
    """Malformed IR."""


@dataclass
class Op:
    """One three-address operation.

    * ALU/MUL/CMP: ``dst = opcode(a, b)``
    * ``li``: ``dst = a`` (literal)        * ``mov``: ``dst = a`` (vreg)
    * loads: ``dst = mem[a]``              * ``st``: ``mem[a] = b``
    """

    opcode: str
    dst: str | None
    a: str | int | None = None
    b: str | int | None = None

    def __post_init__(self) -> None:
        if self.opcode not in ALL_OPCODES:
            raise IRError(f"unknown IR opcode {self.opcode!r}")
        if self.opcode in STORE_OPCODES:
            if self.dst is not None:
                raise IRError("store has no destination register")
        elif self.dst is None:
            raise IRError(f"{self.opcode} needs a destination")

    def sources(self) -> list[str]:
        """Virtual registers read by this op."""
        out = []
        for operand in (self.a, self.b):
            if isinstance(operand, str):
                out.append(operand)
        return out

    def __str__(self) -> str:
        if self.opcode in STORE_OPCODES:
            return f"mem[{self.a}] = {self.b}"
        if self.opcode in LOAD_OPCODES:
            return f"{self.dst} = {self.opcode} mem[{self.a}]"
        if self.opcode == "li":
            return f"{self.dst} = #{self.a}"
        if self.opcode == "mov":
            return f"{self.dst} = {self.a}"
        return f"{self.dst} = {self.opcode}({self.a}, {self.b})"


@dataclass(frozen=True)
class Jump:
    target: str

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass(frozen=True)
class Branch:
    """Branch on a boolean vreg: taken -> ``if_true`` else ``if_false``."""

    cond: str
    if_true: str
    if_false: str
    invert: bool = False

    def __str__(self) -> str:
        c = f"!{self.cond}" if self.invert else self.cond
        return f"branch {c} ? {self.if_true} : {self.if_false}"


@dataclass(frozen=True)
class Halt:
    def __str__(self) -> str:
        return "halt"


Terminator = Jump | Branch | Halt


@dataclass
class Block:
    name: str
    ops: list[Op] = field(default_factory=list)
    terminator: Terminator | None = None

    def successors(self) -> list[str]:
        if isinstance(self.terminator, Jump):
            return [self.terminator.target]
        if isinstance(self.terminator, Branch):
            return [self.terminator.if_true, self.terminator.if_false]
        return []


@dataclass
class IRFunction:
    """A whole compilable unit: blocks, entry point, initial data image."""

    name: str
    blocks: dict[str, Block] = field(default_factory=dict)
    entry: str = "entry"
    data: dict[int, int] = field(default_factory=dict)

    def block_order(self) -> list[Block]:
        """Blocks in insertion order (dicts preserve it)."""
        return list(self.blocks.values())

    def validate(self) -> None:
        if self.entry not in self.blocks:
            raise IRError(f"entry block {self.entry!r} missing")
        for block in self.blocks.values():
            if block.terminator is None:
                raise IRError(f"block {block.name!r} lacks a terminator")
            for successor in block.successors():
                if successor not in self.blocks:
                    raise IRError(
                        f"block {block.name!r} targets missing {successor!r}"
                    )

    def listing(self) -> str:
        lines = [f"; ir function {self.name}"]
        for block in self.block_order():
            lines.append(f"{block.name}:")
            for op in block.ops:
                lines.append(f"    {op}")
            lines.append(f"    {block.terminator}")
        return "\n".join(lines)


class IRBuilder:
    """Convenience construction API.

    Example::

        b = IRBuilder("demo")
        b.block("entry")
        x = b.li(5)
        y = b.add(x, 7)
        b.halt()
        fn = b.finish()
    """

    def __init__(self, name: str):
        self._fn = IRFunction(name)
        self._current: Block | None = None
        self._counter = 0

    # -- structure ------------------------------------------------------
    def block(self, name: str) -> str:
        if name in self._fn.blocks:
            raise IRError(f"duplicate block {name!r}")
        blk = Block(name)
        self._fn.blocks[name] = blk
        if len(self._fn.blocks) == 1:
            self._fn.entry = name
        self._current = blk
        return name

    def switch_to(self, name: str) -> None:
        self._current = self._fn.blocks[name]

    def data_word(self, addr: int, value: int) -> None:
        self._fn.data[addr] = value

    def data_table(self, addr: int, values: list[int]) -> int:
        for offset, value in enumerate(values):
            self._fn.data[addr + offset] = value
        return addr

    def finish(self) -> IRFunction:
        self._fn.validate()
        return self._fn

    # -- op emission ------------------------------------------------------
    def fresh(self, stem: str = "t") -> str:
        self._counter += 1
        return f"%{stem}{self._counter}"

    def _emit(self, op: Op) -> str | None:
        if self._current is None:
            raise IRError("no current block")
        if self._current.terminator is not None:
            raise IRError(f"block {self._current.name!r} already terminated")
        self._current.ops.append(op)
        return op.dst

    def _binary(self, opcode: str, a, b, dst: str | None = None) -> str:
        dst = dst or self.fresh()
        self._emit(Op(opcode, dst, a, b))
        return dst

    def li(self, value: int, dst: str | None = None) -> str:
        dst = dst or self.fresh("c")
        self._emit(Op("li", dst, value))
        return dst

    def mov(self, a: str, dst: str | None = None) -> str:
        dst = dst or self.fresh()
        self._emit(Op("mov", dst, a))
        return dst

    def add(self, a, b, dst=None) -> str: return self._binary("add", a, b, dst)
    def sub(self, a, b, dst=None) -> str: return self._binary("sub", a, b, dst)
    def and_(self, a, b, dst=None) -> str: return self._binary("and", a, b, dst)
    def or_(self, a, b, dst=None) -> str: return self._binary("or", a, b, dst)
    def xor(self, a, b, dst=None) -> str: return self._binary("xor", a, b, dst)
    def shl(self, a, b, dst=None) -> str: return self._binary("shl", a, b, dst)
    def shr(self, a, b, dst=None) -> str: return self._binary("shr", a, b, dst)
    def sra(self, a, b, dst=None) -> str: return self._binary("sra", a, b, dst)
    def mul(self, a, b, dst=None) -> str: return self._binary("mul", a, b, dst)

    def eq(self, a, b, dst=None) -> str: return self._binary("eq", a, b, dst)
    def ne(self, a, b, dst=None) -> str: return self._binary("ne", a, b, dst)
    def ltu(self, a, b, dst=None) -> str: return self._binary("ltu", a, b, dst)
    def geu(self, a, b, dst=None) -> str: return self._binary("geu", a, b, dst)
    def lts(self, a, b, dst=None) -> str: return self._binary("lts", a, b, dst)
    def ges(self, a, b, dst=None) -> str: return self._binary("ges", a, b, dst)

    def load(self, addr, mode: str = "ld", dst=None) -> str:
        dst = dst or self.fresh("m")
        self._emit(Op(mode, dst, addr))
        return dst

    def store(self, addr, value) -> None:
        self._emit(Op("st", None, addr, value))

    # -- terminators ------------------------------------------------------
    def _terminate(self, terminator: Terminator) -> None:
        if self._current is None:
            raise IRError("no current block")
        if self._current.terminator is not None:
            raise IRError(f"block {self._current.name!r} already terminated")
        self._current.terminator = terminator

    def jump(self, target: str) -> None:
        self._terminate(Jump(target))

    def branch(self, cond: str, if_true: str, if_false: str, invert=False) -> None:
        self._terminate(Branch(cond, if_true, if_false, invert))

    def halt(self) -> None:
        self._terminate(Halt())
