"""CSV/JSON exporters round-trip the exploration and Table 1 data."""

import csv
import io
import json

from repro.apps import build_gcd_ir
from repro.explore import explore, small_space
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.reporting import (
    exploration_to_csv,
    exploration_to_json,
    table1_to_csv,
    table1_to_json,
)
from repro.testcost import attach_test_costs, build_table1


def _points():
    result = explore(build_gcd_ir(24, 18), small_space()[:4])
    attach_test_costs(result.feasible_points)
    return result.feasible_points


def test_exploration_csv_parses_back():
    points = _points()
    text = exploration_to_csv(points)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == len(points)
    assert rows[0]["architecture"] == points[0].label
    assert int(rows[0]["cycles"]) == points[0].cycles


def test_exploration_json_structure():
    points = _points()
    data = json.loads(exploration_to_json(points))
    assert len(data) == len(points)
    for entry in data:
        assert set(entry) >= {"architecture", "area", "cycles", "test_cost"}
        assert entry["feasible"] is True


def test_empty_exports():
    assert exploration_to_csv([]) == ""
    assert json.loads(exploration_to_json([])) == []


def test_table1_exports():
    arch = build_architecture(ArchConfig(num_buses=2, rfs=(RFConfig(8),)))
    rows, _ = build_table1(arch)
    text = table1_to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == len(rows)
    data = json.loads(table1_to_json(rows))
    counted = [d for d in data if d["counted"]]
    for entry in counted:
        assert entry["our_approach_cycles"] < entry["full_scan_cycles"]
        assert entry["advantage"] > 1.0
