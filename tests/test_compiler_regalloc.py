"""Register allocation: liveness, global/local split, spilling."""

import pytest

from repro.compiler import IRBuilder, IRInterpreter, compile_ir
from repro.compiler.regalloc import AllocationError, allocate, liveness
from repro.tta import TTASimulator

from tests.conftest import make_arch


def _looped_fn():
    b = IRBuilder("t")
    b.block("entry")
    b.li(3, "%a")
    b.li(4, "%b")
    b.jump("loop")
    b.block("loop")
    b.add("%a", "%b", "%a")
    b.sub("%b", 1, "%b")
    c = b.ne("%b", 0)
    b.branch(c, "loop", "done")
    b.block("done")
    b.store(0, "%a")
    b.halt()
    return b.finish()


def test_liveness_cross_block():
    fn = _looped_fn()
    live = liveness(fn)
    assert "%a" in live["loop"] and "%b" in live["loop"]
    assert "%a" in live["done"]
    assert live["entry"] == set()


def test_globals_get_homes():
    fn = _looped_fn()
    arch = make_arch(2)
    rewritten, allocation = allocate(fn, arch)
    assert "%a" in allocation.reg_of
    assert "%b" in allocation.reg_of
    assert allocation.globals_spilled == 0


def test_every_final_vreg_has_home():
    fn = _looped_fn()
    arch = make_arch(2)
    rewritten, allocation = allocate(fn, arch)
    for block in rewritten.blocks.values():
        for op in block.ops:
            for src in op.sources():
                assert src in allocation.reg_of, src
            if op.dst is not None:
                assert op.dst in allocation.reg_of, op.dst


def test_spilling_under_pressure():
    """Many simultaneously-live globals on a tiny RF forces spill code."""
    b = IRBuilder("t")
    b.block("entry")
    names = [f"%v{i}" for i in range(10)]
    for i, name in enumerate(names):
        b.li(i + 1, name)
    b.jump("use")
    b.block("use")
    acc = b.li(0)
    for name in names:
        acc = b.add(acc, name)
    b.store(0, acc)
    b.halt()
    fn = b.finish()

    arch = make_arch(2, rf_setups=((4, 1, 1),))
    rewritten, allocation = allocate(fn, arch)
    assert allocation.globals_spilled > 0
    # spill homes must be unique
    slots = list(allocation.spill_slots.values())
    assert len(slots) == len(set(slots))

    # and the program still computes the right answer end to end
    compiled = compile_ir(fn, arch)
    sim = TTASimulator(arch, compiled.program)
    sim.run(max_cycles=100_000)
    assert sim.dmem_read(0) == sum(range(1, 11))


def test_local_belady_eviction_correct():
    """A block with more locals than the pool must still compute right."""
    b = IRBuilder("t")
    b.block("entry")
    temps = [b.li(i + 1) for i in range(12)]
    acc = b.li(0)
    for t in temps:
        acc = b.add(acc, t)
    b.store(0, acc)
    b.halt()
    fn = b.finish()

    arch = make_arch(2, rf_setups=((4, 1, 1),))
    compiled = compile_ir(fn, arch)
    sim = TTASimulator(arch, compiled.program)
    sim.run(max_cycles=100_000)
    assert sim.dmem_read(0) == sum(range(1, 13))


def test_too_few_registers_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.store(0, b.li(1))
    b.halt()
    fn = b.finish()
    arch = make_arch(2, rf_setups=((2, 1, 1),))
    with pytest.raises(AllocationError, match="registers"):
        allocate(fn, arch)


def test_local_redefined_in_block_gets_independent_ranges():
    """Fuzz-caught: a local redefined mid-block has two live ranges.

    Under heavy pressure the two ranges may land in different slots; the
    allocator must version the definitions so the first range's reads
    are not redirected to the second range's home.
    """
    b = IRBuilder("t")
    b.block("entry")
    b.li(27, "%v2")
    b.li(195, "%v3")
    b.li(76, "%v0")
    b.li(3, "%iters")
    b.jump("loop")
    b.block("loop")
    b.add("%v2", "%v2", "%v1")          # first definition of %v1
    t1 = b.sra("%v3", "%v1")
    b.and_("%v1", "%v3", "%v3")
    t2 = b.ltu("%v0", t1)
    b.store(303, "%v1")
    b.add("%v1", t2, "%v1")             # redefinition of %v1
    b.store(305, "%v1")
    b.sub("%iters", 1, "%iters")
    c = b.ne("%iters", 0)
    b.branch(c, "loop", "done")
    b.block("done")
    b.store(0, t1)
    b.store(1, "%v3")
    b.halt()
    fn = b.finish()

    reference = IRInterpreter(fn, width=16).run()
    # the failing shape: tiny RF forces everything through spills
    arch = make_arch(2, rf_setups=((4, 1, 1),))
    compiled = compile_ir(fn, arch, profile=reference.block_counts)
    sim = TTASimulator(arch, compiled.program)
    sim.run(max_cycles=200_000)
    for addr in (0, 1, 303, 305):
        assert sim.dmem_read(addr) == reference.memory.get(addr, 0), addr


def test_allocation_deterministic_ranking():
    """Global ranking must not depend on set iteration order."""
    fn = _looped_fn()
    arch = make_arch(2)
    homes = [allocate(fn, arch)[1].reg_of for _ in range(3)]
    assert homes[0] == homes[1] == homes[2]


def test_profile_guides_global_priority():
    """The hot loop's vregs stay in registers; cold ones spill first."""
    b = IRBuilder("t")
    b.block("entry")
    for i in range(8):
        b.li(i, f"%cold{i}")
    b.li(0, "%hot")
    b.li(0, "%i")
    b.jump("loop")
    b.block("loop")
    b.add("%hot", 1, "%hot")
    b.add("%i", 1, "%i")
    c = b.ltu("%i", 100)
    b.branch(c, "loop", "done")
    b.block("done")
    acc = b.li(0)
    for i in range(8):
        acc = b.add(acc, f"%cold{i}")
    acc = b.add(acc, "%hot")
    b.store(0, acc)
    b.halt()
    fn = b.finish()

    arch = make_arch(2, rf_setups=((8, 1, 1),))
    profile = {"entry": 1, "loop": 100, "done": 1}
    _, allocation = allocate(fn, arch, profile=profile)
    assert "%hot" in allocation.reg_of
    assert "%i" in allocation.reg_of
    assert allocation.globals_spilled > 0
    assert "%hot" not in allocation.spill_slots
