"""``repro.energy`` — switching-activity energy estimation.

The paper's exploration ranks TTA design points on (area, cycles, test
cost); the defining property of a TTA — every data transport is
software-visible — also makes *energy* directly observable: a move is a
bus toggle, a socket select, a port-register write, and (for triggers) a
functional-unit activation.  This package turns the simulator's
:class:`~repro.tta.activity.ActivityTrace` into joule-proportional
numbers:

* :mod:`repro.energy.model` — per-event energy weights derived from the
  gate-level view (netlist cell areas ≈ switched capacitance), behind a
  documented :class:`TechnologyParameters` dataclass and a named
  technology registry so weight sets are swappable;
* :mod:`repro.energy.report` — the component-level breakdown (buses vs
  FUs vs RFs vs instruction fetch vs leakage), analogous to the paper's
  test-cost tables;
* :mod:`repro.energy.attach` — the study post-pass that annotates
  evaluated points with ``energy``, mirroring
  :func:`repro.testcost.cost.attach_test_costs`.

The ``energy`` and ``edp`` study objectives in
:mod:`repro.study.objectives` are measured from these annotations, so
``StudySpec(objectives=("cycles", "area", "energy"))`` explores a 3-D
front with real switching activity on the third axis.
"""

from repro.energy.attach import attach_energy, energy_breakdown_of
from repro.energy.model import (
    EnergyModel,
    TechnologyParameters,
    register_technology,
    technology_by_name,
    technology_names,
)
from repro.energy.report import (
    EnergyBreakdown,
    EnergyEntry,
    energy_report,
    format_energy_report,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyEntry",
    "EnergyModel",
    "TechnologyParameters",
    "attach_energy",
    "energy_breakdown_of",
    "energy_report",
    "format_energy_report",
    "register_technology",
    "technology_by_name",
    "technology_names",
]
