"""Switching-activity accounting for the cycle-accurate simulator.

The defining property of a TTA is that *every* data transport is
software-visible, which makes dynamic energy directly observable from a
simulation: each bus, socket, port and register toggles exactly when a
move drives a new value across it.  :class:`ActivityTrace` is the
per-run event ledger the simulator fills when tracing is enabled —
Hamming-distance toggle counts per resource plus event counts — and the
:mod:`repro.energy` model turns into energy via per-event weights
derived from the gate-level view.

Event taxonomy (what is counted, and against what previous value):

* **bus toggles** — bits flipped on a move bus between consecutive
  transports it carries (a bus holds its last driven value);
* **port toggles** — bits flipped in a unit input register (operand or
  trigger) on commit, and in an FU/LSU result register when a finished
  operation lands;
* **RF read/write toggles** — bits flipped on a register file's read
  path between consecutive reads, and in the addressed storage cell on
  a write;
* **fetch toggles** — bits flipped between consecutive instruction
  words on the instruction-memory read path (the encoded binary words
  of :class:`repro.tta.encoding.MoveEncoder`);
* **event counts** — transports per bus and per socket, triggers per
  unit (FU/LSU/PC), reads/writes per RF, fetched words, guard-bit
  flips.

All counters are exact integers; the trace is purely observational and
never alters simulation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.bitops import popcount


def hamming(a: int, b: int) -> int:
    """Number of differing bits between two non-negative words."""
    return popcount(a ^ b)


def _bump(table: dict, key, amount: int) -> None:
    table[key] = table.get(key, 0) + amount


@dataclass
class ActivityTrace:
    """Per-run switching-activity ledger (filled by the simulator)."""

    width: int
    cycles: int = 0

    # bus index -> counters
    bus_toggles: dict[int, int] = field(default_factory=dict)
    bus_transports: dict[int, int] = field(default_factory=dict)

    # (unit, port) -> counters
    port_toggles: dict[tuple[str, str], int] = field(default_factory=dict)
    socket_transports: dict[tuple[str, str], int] = field(
        default_factory=dict
    )

    # unit name -> counters
    fu_activations: dict[str, int] = field(default_factory=dict)
    rf_reads: dict[str, int] = field(default_factory=dict)
    rf_writes: dict[str, int] = field(default_factory=dict)
    rf_read_toggles: dict[str, int] = field(default_factory=dict)
    rf_write_toggles: dict[str, int] = field(default_factory=dict)

    guard_toggles: int = 0
    fetch_words: int = 0
    fetch_toggles: int = 0

    # ------------------------------------------------------------------
    # recording (the simulator's hooks)
    # ------------------------------------------------------------------
    def record_bus(self, bus: int, old: int, new: int) -> None:
        _bump(self.bus_toggles, bus, hamming(old, new))
        _bump(self.bus_transports, bus, 1)

    def record_socket(self, unit: str, port: str) -> None:
        _bump(self.socket_transports, (unit, port), 1)

    def record_port(self, unit: str, port: str, old: int, new: int) -> None:
        _bump(self.port_toggles, (unit, port), hamming(old, new))

    def record_activation(self, unit: str) -> None:
        _bump(self.fu_activations, unit, 1)

    def record_rf_read(self, unit: str, old: int, new: int) -> None:
        _bump(self.rf_reads, unit, 1)
        _bump(self.rf_read_toggles, unit, hamming(old, new))

    def record_rf_write(self, unit: str, old: int, new: int) -> None:
        _bump(self.rf_writes, unit, 1)
        _bump(self.rf_write_toggles, unit, hamming(old, new))

    def record_fetch(self, old_word: int, new_word: int) -> None:
        self.fetch_words += 1
        self.fetch_toggles += hamming(old_word, new_word)

    def record_guard(self, old: int, new: int) -> None:
        self.guard_toggles += hamming(old & 1, new & 1)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def total_transports(self) -> int:
        return sum(self.bus_transports.values())

    @property
    def total_toggles(self) -> int:
        """Every counted bit flip, across all resource classes."""
        return (
            sum(self.bus_toggles.values())
            + sum(self.port_toggles.values())
            + sum(self.rf_read_toggles.values())
            + sum(self.rf_write_toggles.values())
            + self.fetch_toggles
            + self.guard_toggles
        )
