"""Live metrics: a process-wide registry with typed instruments.

Where :class:`~repro.telemetry.metrics.MetricsCollector` is a cheap
per-run accumulator that ships snapshots *once* (worker -> parent,
run -> stats), a :class:`LiveRegistry` is the long-lived, thread-safe
side: the study server updates it continuously and readers scrape it
at any moment.  Three instrument types:

* **counter** — monotone float/int total (``jobs_submitted``,
  ``points_recorded``);
* **gauge** — last-written value (``queue_depth``,
  ``workers_busy``);
* **histogram** — a :class:`~repro.telemetry.histogram.Histogram`
  (``queue_wait_seconds``, ``eval_seconds``) with bucket counts,
  sum/count and estimated p50/p90/p99.

Every instrument carries a **label set** (e.g. ``tenant="a"``); one
metric name owns many label series, and :func:`aggregate_series` sums
series back together for per-tenant or global roll-ups.

Exposition is zero-dependency: :func:`render_prometheus` emits the
Prometheus text format 0.0.4 (``# HELP``/``# TYPE`` once per metric
name, ``_total`` counters, cumulative ``_bucket{le=...}`` histograms),
and :class:`MetricsExporter` serves it from a stdlib
``ThreadingHTTPServer`` on a daemon thread (``GET /metrics``).

Like everything in :mod:`repro.telemetry`, the registry is opt-in and
result-equivalent: no study code constructs one on its own, and an
instrumented call site handed ``metrics=None`` does no bookkeeping.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.histogram import DEFAULT_BOUNDS, Histogram

_LabelKey = "tuple[tuple[str, str], ...]"


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class LiveRegistry:
    """Thread-safe named counters, gauges and histograms.

    Instruments are created on first touch; the (name, labels) pair
    identifies a series.  A name must keep one instrument type for the
    life of the registry (``ValueError`` otherwise) so exposition
    stays well-formed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> {label_key: value | Histogram}
        self._counters: dict[str, dict] = {}
        self._gauges: dict[str, dict] = {}
        self._histograms: dict[str, dict] = {}
        self._labels: dict[tuple, dict] = {}   # label_key -> labels
        self._help: dict[str, str] = {}

    # ------------------------------------------------------------------
    def _series(self, table: dict, name: str, labels: dict, help: str | None):
        for other in (self._counters, self._gauges, self._histograms):
            if other is not table and name in other:
                raise ValueError(
                    f"metric {name!r} already registered with a "
                    "different instrument type"
                )
        if help and name not in self._help:
            self._help[name] = help
        key = _label_key(labels)
        self._labels.setdefault(key, dict(labels))
        return table.setdefault(name, {}), key

    def count(
        self, name: str, amount: float = 1,
        help: str | None = None, **labels,
    ) -> None:
        """Add ``amount`` (>= 0) to the counter series ``(name, labels)``."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        with self._lock:
            series, key = self._series(self._counters, name, labels, help)
            series[key] = series.get(key, 0) + amount

    def gauge(
        self, name: str, value: float,
        help: str | None = None, **labels,
    ) -> None:
        """Set the gauge series ``(name, labels)`` to ``value``."""
        with self._lock:
            series, key = self._series(self._gauges, name, labels, help)
            series[key] = value

    def observe(
        self, name: str, value: float,
        help: str | None = None, bounds: tuple = DEFAULT_BOUNDS, **labels,
    ) -> None:
        """Record ``value`` into the histogram series ``(name, labels)``."""
        with self._lock:
            series, key = self._series(self._histograms, name, labels, help)
            hist = series.get(key)
            if hist is None:
                hist = series[key] = Histogram(bounds)
            hist.observe(value)

    def merge_histogram(
        self, name: str, snapshot: dict,
        help: str | None = None, **labels,
    ) -> None:
        """Fold a :meth:`Histogram.snapshot` into a series (additive).

        This is how per-run histograms measured inside pool workers
        (``eval_seconds``) land in the live registry: the study merges
        worker snapshots deterministically, and the server folds the
        merged result in per (tenant, job) when the run completes.
        """
        with self._lock:
            series, key = self._series(self._histograms, name, labels, help)
            hist = series.get(key)
            if hist is None:
                hist = series[key] = Histogram(tuple(snapshot["bounds"]))
            hist.merge(snapshot)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of every series, grouped by metric name.

        Shape: ``{"counters": {name: [{"labels": {...}, "value": v},
        ...]}, "gauges": {...}, "histograms": {name: [{"labels": ...,
        "count": ..., "sum": ..., "bounds": ..., "counts": ...,
        "quantiles": {"p50": ...}}]}, "help": {name: text}}``.
        """
        with self._lock:
            counters = {
                name: [
                    {"labels": dict(self._labels[key]), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: [
                    {"labels": dict(self._labels[key]), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self._gauges.items())
            }
            histograms = {
                name: [
                    dict(
                        labels=dict(self._labels[key]),
                        quantiles=hist.quantiles(),
                        **hist.snapshot(),
                    )
                    for key, hist in sorted(series.items())
                ]
                for name, series in sorted(self._histograms.items())
            }
            return {
                "counters": counters,
                "gauges": gauges,
                "histograms": histograms,
                "help": dict(self._help),
            }

    def render_prometheus(self) -> str:
        """The registry in Prometheus text format (see module doc)."""
        return render_prometheus(self.snapshot())


# ----------------------------------------------------------------------
# aggregation over snapshot series
# ----------------------------------------------------------------------
def aggregate_series(series: "list[dict]", by: str | None = None) -> dict:
    """Sum snapshot series into roll-ups.

    ``series`` is one metric's list from :meth:`LiveRegistry.snapshot`.
    With ``by=None`` everything sums into a single entry keyed ``""``;
    with ``by="tenant"`` entries group by that label's value.  Counter/
    gauge entries sum ``value``; histogram entries merge buckets and
    report fresh quantiles.
    """
    groups: dict[str, dict] = {}
    for entry in series:
        group = str(entry["labels"].get(by, "")) if by else ""
        if "value" in entry:
            slot = groups.setdefault(group, {"value": 0})
            slot["value"] += entry["value"]
        else:
            hist = groups.get(group)
            if hist is None:
                groups[group] = Histogram.from_snapshot(entry)
            else:
                hist.merge(entry)
    return {
        group: (
            slot if isinstance(slot, dict)
            else dict(quantiles=slot.quantiles(), **slot.snapshot())
        )
        for group, slot in groups.items()
    }


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix stamped onto every exposed metric name.
PROMETHEUS_PREFIX = "repro_"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: dict, extra: "list[tuple[str, str]]" = ()) -> str:
    pairs = [
        (k, _escape_label(v)) for k, v in sorted(labels.items())
    ] + list(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_bound(bound: float) -> str:
    return _format_value(float(bound))


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`LiveRegistry.snapshot` as Prometheus text.

    ``# HELP``/``# TYPE`` appear exactly once per metric name.
    Counters expose ``<name>_total``; histograms expose cumulative
    ``<name>_bucket{le="..."}`` series ending in ``le="+Inf"`` plus
    ``<name>_sum``/``<name>_count``.
    """
    help_texts = snapshot.get("help", {})
    lines: list[str] = []

    def header(name: str, exposed: str, kind: str) -> None:
        text = help_texts.get(name, name.replace("_", " "))
        lines.append(f"# HELP {exposed} {text}")
        lines.append(f"# TYPE {exposed} {kind}")

    for name, series in snapshot.get("counters", {}).items():
        exposed = f"{PROMETHEUS_PREFIX}{name}_total"
        header(name, exposed, "counter")
        for entry in series:
            lines.append(
                f"{exposed}{_labels_text(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for name, series in snapshot.get("gauges", {}).items():
        exposed = f"{PROMETHEUS_PREFIX}{name}"
        header(name, exposed, "gauge")
        for entry in series:
            lines.append(
                f"{exposed}{_labels_text(entry['labels'])} "
                f"{_format_value(entry['value'])}"
            )
    for name, series in snapshot.get("histograms", {}).items():
        exposed = f"{PROMETHEUS_PREFIX}{name}"
        header(name, exposed, "histogram")
        for entry in series:
            labels = entry["labels"]
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cumulative += count
                lines.append(
                    f"{exposed}_bucket"
                    f"{_labels_text(labels, [('le', _format_bound(bound))])}"
                    f" {cumulative}"
                )
            lines.append(
                f"{exposed}_bucket"
                f"{_labels_text(labels, [('le', '+Inf')])} {entry['count']}"
            )
            lines.append(
                f"{exposed}_sum{_labels_text(labels)} "
                f"{_format_value(entry['sum'])}"
            )
            lines.append(
                f"{exposed}_count{_labels_text(labels)} {entry['count']}"
            )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# the /metrics HTTP listener
# ----------------------------------------------------------------------
class MetricsExporter:
    """Serve ``GET /metrics`` for one registry on a daemon thread.

    Stdlib-only (``http.server``); binds ``host:port`` (port ``0``
    picks a free one — read :attr:`address` after :meth:`start`).
    Anything but ``/metrics`` or ``/healthz`` is a 404.
    """

    def __init__(
        self, registry: LiveRegistry, host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self._host = host
        self._port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> str:
        if self._server is None:
            raise RuntimeError("exporter not started")
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    def start(self) -> "MetricsExporter":
        registry = self.registry

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:           # noqa: N802 (stdlib API)
                if self.path.split("?", 1)[0] not in (
                    "/metrics", "/healthz",
                ):
                    self.send_error(404)
                    return
                if self.path.startswith("/healthz"):
                    body = b"ok\n"
                    content_type = "text/plain; charset=utf-8"
                else:
                    body = registry.render_prometheus().encode()
                    content_type = PROMETHEUS_CONTENT_TYPE
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:   # silence stderr spam
                pass

        self._server = ThreadingHTTPServer(
            (self._host, self._port), Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
