"""Gate-level ALU generator.

The Fig. 9 ALU "is capable of performing the operations of the addition,
subtraction, shifting and basic logical operations (AND, OR, XOR)".  The
generated netlist implements exactly that (:data:`~repro.components.reference.ALU_OPS`)
with a shared adder/subtractor, a log-stage barrel shifter and an output
mux tree steered by a 3-bit opcode.

Ports: ``a[width]`` (operand O), ``b[width]`` (trigger T), ``op[3]``
(opcode, carried by the trigger move), ``y[width]`` (result R).
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist

OPCODE_BITS = 3


def build_alu(width: int = 16, name: str = "alu") -> Netlist:
    """Build a ``width``-bit ALU netlist (width must be a power of two)."""
    if width < 2 or width & (width - 1):
        raise ValueError(f"ALU width must be a power of two >= 2, got {width}")
    wb = WordBuilder(f"{name}{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    op = wb.input_word("op", OPCODE_BITS)

    # Opcode order: add sub and or xor shl shr sra  (LSB-first bits).
    n0, n1, n2 = (wb.not_(bit) for bit in op)
    is_sub = wb.and_(op[0], n1, n2)

    # Shared adder/subtractor: a + (b ^ sub) + sub.
    b_eff = [wb.xor_(x, is_sub) for x in b]
    addsub, _carry = wb.ripple_adder(a, b_eff, is_sub)

    and_w = wb.and_word(a, b)
    or_w = wb.or_word(a, b)
    xor_w = wb.xor_word(a, b)

    # Shift group: shl=101, shr=110, sra=111 (LSB first: op0,op1,op2).
    right = op[1]
    arith = wb.and_(op[0], op[1])
    amount = b[: (width - 1).bit_length()]
    shifted = wb.barrel_shifter(a, amount, right, arith)

    result = wb.mux_tree(
        list(op),
        [addsub, addsub, and_w, or_w, xor_w, shifted, shifted, shifted],
    )
    wb.output_word("y", result)
    wb.netlist.check()
    return wb.netlist
