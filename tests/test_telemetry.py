"""Telemetry: tracing, phase metrics, and their result-neutrality.

The contract under test is the tentpole's hard requirement: telemetry
is strictly opt-in and *result-equivalent* — a study run with a tracer
and metrics attached produces exactly the fronts and cache contents of
an untraced run — plus the bookkeeping invariants (phase seconds sum
to at most the elapsed wall clock, merged pool counters are
deterministic, ``proposed == cache_hits + evaluated``).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, ResultCache, run_campaign
from repro.study import StudySpec, run_study
from repro.telemetry import (
    MetricsCollector,
    Tracer,
    load_trace,
    merge_snapshots,
    read_trace,
    summarize_trace,
    validate_record,
)
from repro.telemetry.metrics import format_phases
from repro.telemetry.summarize import format_trace_summary


def _point_rows(result):
    return [
        (p.label, p.area, p.cycles, p.test_cost, p.energy, p.feasible)
        for run in result.runs
        for p in run.result.points
    ]


def _cache_bytes(directory: Path) -> dict[str, str]:
    return {
        path.name: path.read_text()
        for path in sorted(Path(directory).glob("shards/*/*.json"))
    }


# ----------------------------------------------------------------------
# schema + tracer round-trip
# ----------------------------------------------------------------------
class TestSchema:
    def test_tracer_output_round_trips_through_validation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, study="s") as tracer:
            tracer.event("wave", run="r", wave=0, requested=3)
            with tracer.span("study", strategy="exhaustive"):
                tracer.event(
                    "point", run="r", wave=0, config="b2", source="fresh",
                )
        records = read_trace(path.read_text().splitlines())
        assert [r["kind"] for r in records] == [
            "meta", "event", "event", "span",
        ]
        assert records[0]["name"] == "trace"
        assert records[0]["data"]["schema"] == 1
        # spans carry a duration, and ts are monotone non-negative
        span = records[-1]
        assert span["dur"] >= 0
        assert all(r["ts"] >= 0 for r in records)
        assert all(r["study"] == "s" for r in records[1:])

    def test_validate_record_rejects_malformed(self):
        good = {"v": 1, "kind": "event", "ts": 0.5, "name": "wave"}
        assert validate_record(dict(good)) == good
        bad = [
            {**good, "extra": 1},                      # unknown field
            {**good, "v": 2},                          # wrong version
            {**good, "kind": "other"},                 # unknown kind
            {**good, "ts": -1.0},                      # negative ts
            {**good, "ts": True},                      # bool-as-number
            {**good, "dur": 0.1},                      # dur on non-span
            {"v": 1, "kind": "span", "ts": 0.0, "name": "s"},  # no dur
            {"v": 1, "kind": "meta", "ts": 0.0},       # missing name
            [good],                                    # not an object
        ]
        for record in bad:
            with pytest.raises(ValueError):
                validate_record(record)

    def test_read_trace_requires_meta_header(self):
        line = json.dumps({"v": 1, "kind": "event", "ts": 0.0, "name": "x"})
        with pytest.raises(ValueError, match="meta"):
            read_trace([line])
        with pytest.raises(ValueError, match="empty"):
            read_trace([])
        with pytest.raises(ValueError, match="line 2"):
            meta = json.dumps(
                {"v": 1, "kind": "meta", "ts": 0.0, "name": "trace"}
            )
            read_trace([meta, "{not json"])

    def test_tracer_accepts_file_like_sink(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("wave", run="r")
        tracer.close()
        records = read_trace(sink.getvalue().splitlines())
        assert len(records) == 2
        assert records[1]["run"] == "r"


# ----------------------------------------------------------------------
# metrics collector
# ----------------------------------------------------------------------
class TestMetrics:
    def test_phase_and_counter_accumulation(self):
        m = MetricsCollector()
        for _ in range(3):
            with m.phase("schedule"):
                pass
        m.count("proposed", 5)
        m.count("proposed")
        snap = m.snapshot()
        assert snap["phases"]["schedule"]["calls"] == 3
        assert snap["phases"]["schedule"]["seconds"] >= 0
        assert snap["counters"] == {"proposed": 6}

    def test_phase_records_time_on_exception(self):
        m = MetricsCollector()
        with pytest.raises(RuntimeError):
            with m.phase("build"):
                raise RuntimeError("boom")
        assert m.snapshot()["phases"]["build"]["calls"] == 1

    def test_merge_is_additive_and_order_independent(self):
        a = MetricsCollector()
        with a.phase("build"):
            pass
        a.count("evaluated", 2)
        b = MetricsCollector()
        with b.phase("build"):
            pass
        with b.phase("simulate"):
            pass
        b.count("evaluated", 3)
        ab = merge_snapshots([a.snapshot(), b.snapshot()])
        ba = merge_snapshots([b.snapshot(), a.snapshot()])
        assert ab["counters"] == ba["counters"] == {"evaluated": 5}
        assert ab["phases"]["build"]["calls"] == 2
        assert ab["phases"].keys() == ba["phases"].keys()

    def test_format_phases_lists_known_phases_first(self):
        m = MetricsCollector()
        with m.phase("zebra"):
            pass
        with m.phase("build"):
            pass
        text = format_phases(m.snapshot())
        assert text.index("build") < text.index("zebra")
        assert format_phases({"phases": {}}) == "(no phase timings)"


# ----------------------------------------------------------------------
# result equivalence: telemetry on == telemetry off
# ----------------------------------------------------------------------
SPACES = (
    ("gcd", "small"),
    ("fir", "dsp"),
)


class TestResultEquivalence:
    @pytest.mark.parametrize("workload,space", SPACES)
    def test_study_results_and_cache_identical(
        self, tmp_path, workload, space
    ):
        """Same fronts, same bytes in the result cache, on vs off."""
        def spec(name):
            return StudySpec(
                name=name, workloads=(workload,), space=space,
                objectives=("area", "cycles", "test_cost"), select=True,
            )

        plain = run_study(spec("off"), cache=ResultCache(tmp_path / "a"))
        traced = run_study(
            spec("on"),
            cache=ResultCache(tmp_path / "b"),
            tracer=Tracer(tmp_path / "t.jsonl"),
            collect_metrics=True,
        )
        assert _point_rows(plain) == _point_rows(traced)
        assert [p.label for p in plain.single.pareto] == [
            p.label for p in traced.single.pareto
        ]
        if plain.single.selection is not None:
            assert (
                plain.single.selection.point.label
                == traced.single.selection.point.label
            )
        assert _cache_bytes(tmp_path / "a") == _cache_bytes(tmp_path / "b")

    def test_annealing_rng_stream_unchanged_by_move_counters(self):
        """Move accounting must not perturb the annealing walk."""
        def spec(name):
            return StudySpec(
                name=name, workloads=("gcd",), space="small",
                strategy="simulated_annealing",
                strategy_params={"max_evaluations": 10, "seed": 3},
            )

        plain = run_study(spec("off"))
        metered = run_study(spec("on"), collect_metrics=True)
        assert _point_rows(plain) == _point_rows(metered)
        counters = metered.single.stats.counters
        assert counters["moves_proposed"] == (
            counters["moves_accepted"] + counters["moves_rejected"]
        )

    def test_stats_empty_without_telemetry(self):
        result = run_study(
            StudySpec(name="plain", workloads=("gcd",), space="small")
        )
        assert result.single.stats.phases == {}
        assert result.single.stats.counters == {}


# ----------------------------------------------------------------------
# phase timers and counter invariants
# ----------------------------------------------------------------------
class TestInvariants:
    def test_phase_seconds_bounded_by_elapsed_serial(self):
        from repro.energy import attach as energy_attach

        # Earlier tests may have memoized gcd/small energies in this
        # process; the simulate phase only runs on memo misses.
        energy_attach._ENERGY_CACHE.clear()
        result = run_study(
            StudySpec(
                name="timed", workloads=("gcd",), space="small",
                objectives=("area", "cycles", "test_cost", "energy"),
            ),
            collect_metrics=True,
        )
        stats = result.single.stats
        assert stats.phases, "metrics collection yielded no phases"
        total = sum(p["seconds"] for p in stats.phases.values())
        assert total <= stats.elapsed
        assert {"build", "schedule", "test_cost", "simulate"} <= set(
            stats.phases
        )

    def test_proposed_equals_hits_plus_evaluated(self, tmp_path):
        spec = StudySpec(name="inv", workloads=("gcd",), space="small")
        cache = ResultCache(tmp_path)
        for _ in range(2):  # second pass is all cache hits
            stats = run_study(
                spec, cache=cache, collect_metrics=True
            ).single.stats
            c = stats.counters
            assert c["proposed"] == c["cache_hits"] + c["evaluated"]
            assert c["cache_hits"] == stats.cache_hits
            assert c["evaluated"] == stats.evaluated

    def test_merged_pool_counters_deterministic(self, tmp_path):
        """workers=2 merges per-config snapshots in submission order:
        counters must match serial exactly, run after run."""
        def counters(cache_dir, workers):
            stats = run_study(
                StudySpec(
                    name="pool", workloads=("gcd",), space="small",
                ),
                cache=ResultCache(cache_dir),
                workers=workers,
                collect_metrics=True,
            ).single.stats
            return stats.counters

        serial = counters(tmp_path / "w1", 1)
        pooled_a = counters(tmp_path / "w2a", 2)
        pooled_b = counters(tmp_path / "w2b", 2)
        assert pooled_a == pooled_b == serial
        assert serial["proposed"] == 12


# ----------------------------------------------------------------------
# cache + post-pass instrumentation
# ----------------------------------------------------------------------
class TestCacheInstrumentation:
    def test_cache_stats_lifecycle(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = StudySpec(
            name="cs", workloads=("gcd",), space="small",
            objectives=("area", "cycles", "test_cost"),
        )
        run_study(spec, cache=cache)
        first = cache.stats.as_dict()
        assert first["misses"] == 12
        assert first["puts"] >= 12
        assert first["bytes_written"] > 0
        assert cache.bytes_on_disk() > 0
        run_study(spec, cache=cache)
        delta = cache.stats.delta(first)
        assert delta["hits"] == 12
        assert delta["misses"] == 0
        assert delta["puts"] == 0
        assert 0 < cache.stats.hit_rate < 1

    def test_post_pass_hits_reported_without_telemetry(self, tmp_path):
        """Satellite: the second run's summary must credit post-pass
        work served from the cache, with telemetry off."""
        cache = ResultCache(tmp_path)
        spec = StudySpec(
            name="pp", workloads=("gcd",), space="small",
            objectives=("area", "cycles", "test_cost"),
        )
        first = run_study(spec, cache=cache)
        assert first.single.stats.post_pass_hits == 0
        second = run_study(spec, cache=cache)
        front = len(second.single.pareto)
        assert second.single.stats.post_pass_hits == front > 0
        assert f"+{front}pp" in second.summary()


# ----------------------------------------------------------------------
# trace contents + offline summarize
# ----------------------------------------------------------------------
class TestTraceContents:
    def test_study_trace_structure(self, tmp_path):
        path = tmp_path / "study.jsonl"
        with Tracer(path) as tracer:
            run_study(
                StudySpec(
                    name="traced", workloads=("gcd",), space="small",
                    objectives=("area", "cycles", "test_cost"),
                ),
                cache=ResultCache(tmp_path / "cache"),
                tracer=tracer,
            )
        records = load_trace(path)
        by_name: dict[str, list] = {}
        for r in records:
            by_name.setdefault(r["name"], []).append(r)
        assert set(by_name) >= {
            "trace", "study", "run", "search", "wave", "point",
            "cache", "metrics",
        }
        points = by_name["point"]
        assert len(points) == 12
        assert {p["data"]["source"] for p in points} == {"fresh"}
        assert all(p["config"] for p in points)
        summary = summarize_trace(records)
        assert summary["study"] == "traced"
        run = summary["runs"][0]
        assert run["points"] == 12
        assert run["cached_points"] == 0
        assert run["seconds"] is not None
        text = format_trace_summary(summary)
        assert "gcd/small/w16" in text
        assert "result cache" in text

    def test_campaign_trace_spans_all_jobs(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with Tracer(path) as tracer:
            run_campaign(
                CampaignSpec(
                    name="camp", workloads=("gcd", "crc16"),
                    spaces=("small",), widths=(16,),
                ),
                cache=ResultCache(tmp_path / "cache"),
                tracer=tracer,
            )
        summary = summarize_trace(load_trace(path))
        assert summary["study"] == "camp"
        assert {r["label"] for r in summary["runs"]} == {
            "gcd/small/w16", "crc16/small/w16",
        }
        assert summary["metrics"]["phases"]


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestReporting:
    def test_study_to_json_carries_telemetry(self):
        from repro.reporting import study_to_dict

        result = run_study(
            StudySpec(
                name="ser", workloads=("gcd",), space="small",
                objectives=("area", "cycles", "test_cost"),
            ),
            collect_metrics=True,
        )
        data = study_to_dict(result)
        stats = data["runs"][0]["stats"]
        assert stats["post_pass_hits"] == 0
        assert "schedule" in stats["phases"]
        assert stats["counters"]["proposed"] == 12
        json.dumps(data)  # JSON-safe end to end
